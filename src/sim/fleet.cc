#include "src/sim/fleet.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/log.h"

namespace cheriot::sim {

Fleet::Fleet(FleetOptions options)
    : options_(options), gateway_(options.world) {
  // The gateway sits inside the switch: port latency 0, so a frame
  // transmitted by a board at t is processed by the gateway "at t" and the
  // reply crosses only the destination board's link — reproducing the
  // single-board NetWorld round-trip of exactly one link latency.
  gateway_port_ = fabric_.AttachPort(0, [this](Cycles due, Fabric::Frame f) {
    gateway_inbox_.emplace_back(due, std::move(f));
  });
  gateway_.set_emit([this](net::Bytes frame) { GatewayEmit(std::move(frame)); });
  if (options_.trace) {
    fabric_trace_ = std::make_unique<trace::TraceRecorder>(options_.trace_options);
    fabric_trace_->SetLabel("fabric");
    fabric_trace_->SetBoardIndex(-1);
    fabric_.set_trace(fabric_trace_.get());
  }
}

Fleet::~Fleet() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) {
      w.join();
    }
  }
}

int Fleet::AddBoard(FirmwareImage image) {
  CHERIOT_CHECK(!booted_, "AddBoard() after Boot()");
  const int index = static_cast<int>(boards_.size());
  BoardOptions opts;
  opts.index = index;
  opts.mac = MacForIndex(index);
  opts.machine = options_.machine;
  opts.system = options_.system;
  boards_.push_back(std::make_unique<Board>(std::move(image), opts));
  Board* board = boards_.back().get();
  if (options_.trace) {
    board->EnableTrace(options_.trace_options);
  }
  if (options_.forensics) {
    board->EnableForensics(options_.forensics_options);
  }
  board_ports_.push_back(fabric_.AttachPort(
      options_.board_link_latency,
      [board](Cycles due, Fabric::Frame f) {
        board->InjectAt(due, std::move(f));
      }));
  return index;
}

void Fleet::Boot() {
  CHERIOT_CHECK(!boards_.empty(), "Fleet::Boot() with no boards");
  epoch_ = options_.epoch != 0 ? options_.epoch : fabric_.MinLinkLatency();
  CHERIOT_CHECK(epoch_ > 0 && epoch_ <= fabric_.MinLinkLatency(),
                "epoch length must be in (0, min link latency]");
  for (auto& board : boards_) {
    board->Boot();
  }
  booted_ = true;
}

void Fleet::GatewayEmit(net::Bytes frame) {
  fabric_.Transmit(gateway_port_, gateway_emit_at_, frame);
}

void Fleet::ExchangeFrames() {
  // Deterministic order: boards drained by index, then the gateway's inbox
  // by transmit time (stable for ties, preserving drain order).
  for (size_t i = 0; i < boards_.size(); ++i) {
    for (auto& [at, frame] : boards_[i]->DrainTx()) {
      ++frames_exchanged_;
      fabric_.Transmit(board_ports_[i], at, frame);
    }
  }
  std::stable_sort(gateway_inbox_.begin(), gateway_inbox_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // The gateway may emit new board-bound frames while processing (replies,
  // forwards); those go straight to board ports. It never sends to itself.
  std::vector<std::pair<Cycles, net::Bytes>> inbox;
  inbox.swap(gateway_inbox_);
  for (auto& [at, frame] : inbox) {
    gateway_emit_at_ = at;
    gateway_.OnFrame(at, frame);
  }
}

void Fleet::StartWorkers() {
  const int n = std::min<int>(options_.host_threads,
                              static_cast<int>(boards_.size()));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Fleet::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    Cycles target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      target = step_target_;
    }
    try {
      for (;;) {
        const size_t i = next_board_.fetch_add(1);
        if (i >= boards_.size()) {
          break;
        }
        if (boards_[i]->runnable()) {
          boards_[i]->StepTo(target);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!worker_error_) {
        worker_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void Fleet::StepBoardsParallel(Cycles target) {
  if (options_.host_threads <= 1 || boards_.size() <= 1) {
    for (auto& board : boards_) {
      if (board->runnable()) {
        board->StepTo(target);
      }
    }
    return;
  }
  if (workers_.empty()) {
    StartWorkers();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_board_.store(0);
    step_target_ = target;
    workers_running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_running_ == 0; });
    if (worker_error_) {
      std::exception_ptr e = worker_error_;
      worker_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Fleet::RunEpoch(Cycles target) {
  StepBoardsParallel(target);
  now_ = target;
  ExchangeFrames();
}

void Fleet::Run(Cycles cycles) {
  CHERIOT_CHECK(booted_, "Fleet::Run() before Boot()");
  const Cycles end = now_ + cycles;
  while (now_ < end) {
    RunEpoch(std::min<Cycles>(now_ + epoch_, end));
  }
}

bool Fleet::RunUntil(const std::function<bool()>& pred, Cycles max_cycles) {
  CHERIOT_CHECK(booted_, "Fleet::RunUntil() before Boot()");
  const Cycles end = now_ + max_cycles;
  while (!pred()) {
    if (now_ >= end) {
      return false;
    }
    bool any_runnable = false;
    for (auto& board : boards_) {
      if (board->runnable()) {
        any_runnable = true;
        break;
      }
    }
    if (!any_runnable) {
      LOG_WARN("fleet: no runnable boards before predicate held");
      return pred();
    }
    RunEpoch(std::min<Cycles>(now_ + epoch_, end));
  }
  return true;
}

void Fleet::PublishMqtt(const std::string& topic, const net::Bytes& payload) {
  gateway_emit_at_ = now_;
  gateway_.PublishMqtt(now_, topic, payload);
}

void Fleet::SendPing(net::Ipv4 dst, uint16_t id, uint16_t seq) {
  gateway_emit_at_ = now_;
  gateway_.SendPing(now_, dst, id, seq);
}

std::vector<trace::TraceRecorder*> Fleet::TraceRecorders() {
  std::vector<trace::TraceRecorder*> out;
  for (auto& board : boards_) {
    if (auto* tr = board->trace_recorder()) {
      out.push_back(tr);
    }
  }
  if (fabric_trace_) {
    out.push_back(fabric_trace_.get());
  }
  return out;
}

std::vector<Board::Fingerprint> Fleet::Fingerprints() {
  std::vector<Board::Fingerprint> out;
  out.reserve(boards_.size());
  for (auto& board : boards_) {
    out.push_back(board->fingerprint());
  }
  return out;
}

}  // namespace cheriot::sim

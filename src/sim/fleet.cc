#include "src/sim/fleet.h"

#include <algorithm>
#include <cstdlib>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/snap/wire.h"

namespace cheriot::sim {

namespace {

// Validates options before any member that depends on them is constructed
// (the fabric and gateway are built in the member-initialiser list), so a
// bad epoch dies with a clear message instead of a misconfigured fleet.
FleetOptions ValidatedOptions(FleetOptions o) {
  CHERIOT_CHECK(o.board_link_latency > 0,
                "FleetOptions::board_link_latency must be positive");
  CHERIOT_CHECK(o.epoch <= o.board_link_latency,
                "FleetOptions::epoch must not exceed the board link latency "
                "(the conservative-lookahead bound)");
  if (const char* env = std::getenv("CHERIOT_FLEET_FAST_FORWARD")) {
    o.fast_forward = !(env[0] == '0' && env[1] == '\0');
  }
  return o;
}

}  // namespace

Fleet::Fleet(FleetOptions options)
    : options_(ValidatedOptions(std::move(options))),
      gateway_(options_.world) {
  // The gateway sits inside the switch: port latency 0, so a frame
  // transmitted by a board at t is processed by the gateway "at t" and the
  // reply crosses only the destination board's link — reproducing the
  // single-board NetWorld round-trip of exactly one link latency.
  gateway_port_ = fabric_.AttachPort(
      0, [this](Cycles due, Fabric::Frame f, flow::FlowId flow) {
        gateway_inbox_.push_back({due, std::move(f), flow});
      });
  gateway_.set_emit([this](net::Bytes frame, flow::FlowId flow) {
    GatewayEmit(std::move(frame), flow);
  });
  if (options_.trace) {
    fabric_trace_ = std::make_unique<trace::TraceRecorder>(options_.trace_options);
    fabric_trace_->SetLabel("fabric");
    fabric_trace_->SetBoardIndex(-1);
    fabric_.set_trace(fabric_trace_.get());
    // Gateway-side TCP fault drops become clockless kFrameDrop events on the
    // fabric track (the gateway has no recorder of its own).
    gateway_.set_drop_trace(
        [this](Cycles at, size_t bytes, flow::FlowId flow) {
          fabric_trace_->OnFrameDropAt(at, flow::kDropGatewayTcp, bytes,
                                       flow.origin, flow.seq);
        });
  }
  if (options_.flow) {
    flow_ = std::make_unique<flow::FlowRecorder>(options_.flow_options);
    fabric_.set_flow(flow_.get());
    gateway_.set_flow(flow_.get());
    flow_next_sample_ = options_.flow_options.metrics_interval;
  }
}

Fleet::~Fleet() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) {
      w.join();
    }
  }
}

int Fleet::AddBoard(FirmwareImage image) {
  CHERIOT_CHECK(!booted_, "AddBoard() after Boot()");
  const int index = static_cast<int>(boards_.size());
  BoardOptions opts;
  opts.index = index;
  opts.mac = MacForIndex(index);
  opts.machine = options_.machine;
  opts.system = options_.system;
  // The fleet-level switch governs the per-board kernel idle fast-forward
  // too, so one flag (or the environment override) flips the whole stack.
  opts.system.fast_forward = options_.fast_forward;
  boards_.push_back(std::make_unique<Board>(std::move(image), opts));
  Board* board = boards_.back().get();
  // The fleet keeps one whole-fleet control log (Snapshot()); per-board
  // replay logs would duplicate it and grow without bound.
  board->set_op_log_enabled(false);
  if (options_.trace) {
    board->EnableTrace(options_.trace_options);
  }
  if (options_.forensics) {
    board->EnableForensics(options_.forensics_options);
  }
  if (options_.cov) {
    board->EnableCoverage(options_.cov_options);
  }
  if (options_.flow) {
    board->set_flow_staging(true);
  }
  board_ports_.push_back(fabric_.AttachPort(
      options_.board_link_latency,
      [this, board, index](Cycles due, Fabric::Frame f, flow::FlowId flow) {
        board->InjectAt(due, std::move(f), flow);
        // A newly injected frame is an interesting event: clamp the cached
        // bound so a parked board (or one parked this barrier) is woken for
        // the epoch containing the delivery. Guarded because the fabric can
        // in principle deliver before Boot() sizes the cache.
        if (static_cast<size_t>(index) < next_interesting_.size() &&
            due < next_interesting_[static_cast<size_t>(index)]) {
          next_interesting_[static_cast<size_t>(index)] = due;
        }
      }));
  return index;
}

void Fleet::Boot() {
  CHERIOT_CHECK(!boards_.empty(), "Fleet::Boot() with no boards");
  epoch_ = options_.epoch != 0 ? options_.epoch : fabric_.MinLinkLatency();
  CHERIOT_CHECK(epoch_ > 0 && epoch_ <= fabric_.MinLinkLatency(),
                "epoch length must be in (0, min link latency]");
  for (auto& board : boards_) {
    board->Boot();
  }
  // Zero-initialised next-event cache: every board looks busy, so the first
  // epoch is conservative and steps everyone, refreshing the cache with real
  // bounds.
  next_interesting_.assign(boards_.size(), 0);
  worker_dirty_.resize(std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(std::max(options_.host_threads, 1)),
                          boards_.size())));
  // Should firmware ever stage frames during boot, drain them at the first
  // barrier rather than losing them to the dirty-list optimisation.
  for (size_t i = 0; i < boards_.size(); ++i) {
    if (boards_[i]->has_staged_tx()) {
      tx_dirty_.push_back(i);
    }
  }
  booted_ = true;
}

void Fleet::GatewayEmit(net::Bytes frame, flow::FlowId flow) {
  fabric_.Transmit(gateway_port_, gateway_emit_at_, frame, flow);
}

Cycles Fleet::NextEpochTarget(Cycles end) const {
  const Cycles conservative = std::min<Cycles>(now_ + epoch_, end);
  if (!options_.fast_forward) {
    return conservative;
  }
  // Coarsening is sound only when EVERY runnable board is provably idle past
  // now_: an idle board cannot execute, so it cannot transmit, so no frame
  // can become due inside the extended epoch. One busy board (its next
  // interesting cycle is its own clock, <= now_ modulo overshoot) forces the
  // conservative bound — it could transmit at any cycle.
  Cycles next = System::kForever;
  for (size_t i = 0; i < boards_.size(); ++i) {
    if (!boards_[i]->runnable()) {
      continue;
    }
    const Cycles n = next_interesting_[i];
    if (n <= now_) {
      return conservative;
    }
    next = std::min(next, n);
  }
  if (next == System::kForever) {
    // Nothing will ever happen again (all exited/blocked, no timers, no
    // frames in flight): jump the fleet clock straight to the horizon.
    return end;
  }
  // Never shorter than the conservative epoch (coarsening only), never past
  // the horizon. Landing exactly ON the next event is correct: the barrier's
  // Run budget ends there, so the waking board executes in the following
  // epoch, which is conservative because that board is then busy.
  return std::min(std::max(next, conservative), end);
}

void Fleet::BuildStepList(Cycles target) {
  step_list_.clear();
  for (size_t i = 0; i < boards_.size(); ++i) {
    if (!boards_[i]->runnable()) {
      continue;
    }
    // Parking: a board whose next interesting cycle lies beyond the target
    // cannot execute a single instruction before the barrier — stepping it
    // would only idle its clock forward, which CatchUp() does lazily in one
    // jump at the end of the run. (A busy board's bound is its own clock; if
    // that already passed the target, StepTo would be a no-op anyway.)
    if (options_.fast_forward && next_interesting_[i] > target) {
      ++boards_skipped_;
      continue;
    }
    step_list_.push_back(i);
  }
  boards_stepped_ += step_list_.size();
}

void Fleet::StartWorkers() {
  const size_t n = std::min<size_t>(
      static_cast<size_t>(options_.host_threads), boards_.size());
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (worker_dirty_.size() < workers_.size()) {
    worker_dirty_.resize(workers_.size());
  }
}

void Fleet::WorkerLoop(size_t worker_id) {
  uint64_t seen = 0;
  for (;;) {
    Cycles target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      target = step_target_;
    }
    try {
      for (;;) {
        const size_t k = next_step_.fetch_add(1);
        if (k >= step_list_.size()) {
          break;
        }
        const size_t i = step_list_[k];
        boards_[i]->StepTo(target);
        next_interesting_[i] = boards_[i]->NextInterestingCycle();
        if (boards_[i]->has_staged_tx()) {
          worker_dirty_[worker_id].push_back(i);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!worker_error_) {
        worker_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void Fleet::StepBoards(Cycles target) {
  if (options_.host_threads <= 1 || boards_.size() <= 1) {
    for (size_t i : step_list_) {
      boards_[i]->StepTo(target);
      next_interesting_[i] = boards_[i]->NextInterestingCycle();
      if (boards_[i]->has_staged_tx()) {
        worker_dirty_[0].push_back(i);
      }
    }
    return;
  }
  if (workers_.empty()) {
    StartWorkers();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_step_.store(0);
    step_target_ = target;
    workers_running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_running_ == 0; });
    if (worker_error_) {
      std::exception_ptr e = worker_error_;
      worker_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Fleet::ExchangeFrames() {
  // Sharded exchange: only boards that actually staged frames are drained.
  // Workers claim boards in nondeterministic order, so the merged dirty list
  // is sorted to restore the contract's board-index drain order. A board can
  // appear at most once per epoch (one worker steps it once); the sort is
  // over a handful of indices, not all N boards.
  for (auto& dirty : worker_dirty_) {
    tx_dirty_.insert(tx_dirty_.end(), dirty.begin(), dirty.end());
    dirty.clear();
  }
  std::sort(tx_dirty_.begin(), tx_dirty_.end());
  // Observations from this epoch (deliveries/drops of frames transmitted at
  // earlier barriers) are fed to the flow recorder before this barrier's new
  // transmits, keeping the hook sequence in causal order.
  DrainFlowObservations();
  for (size_t i : tx_dirty_) {
    for (auto& [at, frame, flow] : boards_[i]->DrainTx()) {
      ++frames_exchanged_;
      if (flow_) {
        flow_->OnTx(flow, at, frame.size());
      }
      fabric_.Transmit(board_ports_[i], at, frame, flow);
    }
  }
  tx_dirty_.clear();
  std::stable_sort(gateway_inbox_.begin(), gateway_inbox_.end(),
                   [](const GatewayRx& a, const GatewayRx& b) {
                     return a.at < b.at;
                   });
  // The gateway may emit new board-bound frames while processing (replies,
  // forwards); those go straight to board ports. It never sends to itself.
  std::vector<GatewayRx> inbox;
  inbox.swap(gateway_inbox_);
  for (auto& rx : inbox) {
    gateway_emit_at_ = rx.at;
    gateway_.OnFrame(rx.at, rx.frame, rx.flow);
  }
}

void Fleet::DrainFlowObservations() {
  if (!flow_) {
    return;
  }
  for (size_t i = 0; i < boards_.size(); ++i) {
    for (const Board::FlowObs& obs : boards_[i]->DrainFlowObs()) {
      if (obs.kind == Board::FlowObs::Kind::kDelivered) {
        flow_->OnDelivery(obs.flow, static_cast<int>(i), obs.at);
      } else {
        flow_->OnDrop(obs.flow, flow::kDropNicLoss, obs.at);
      }
    }
  }
}

void Fleet::SampleMetrics() {
  if (!flow_ || now_ < flow_next_sample_) {
    return;
  }
  // One row per board at the first barrier at or after each interval
  // boundary. With adaptive coarsening a single barrier can cross several
  // boundaries; that yields one sample, stamped with the barrier cycle — the
  // schedule is a pure function of the barrier sequence, which is identical
  // for any host worker count.
  const Cycles interval = flow_->options().metrics_interval;
  while (flow_next_sample_ <= now_) {
    flow_next_sample_ += interval;
  }
  for (size_t i = 0; i < boards_.size(); ++i) {
    Board& b = *boards_[i];
    flow::MetricsSeries::Row row;
    row.at = now_;
    row.board = static_cast<int32_t>(i);
    row.board_now = b.Now();
    row.idle_cycles = b.system().sched().idle_cycles();
    row.traps = b.system().switcher().trap_count();
    row.allocs = b.system().alloc().allocation_count();
    row.quota_denials = b.system().alloc().quota_denials();
    row.nic_tx = b.nic_tx_frames();
    row.nic_rx = b.nic_rx_frames();
    row.nic_drops = b.nic_frames_dropped();
    row.futex_waits = b.system().sched().futex_waits();
    flow_->metrics().Append(row);
  }
}

void Fleet::RunEpoch(Cycles target) {
  BuildStepList(target);
  StepBoards(target);
  now_ = target;
  ++barriers_;
  ExchangeFrames();
  SampleMetrics();
}

void Fleet::CatchUp() {
  if (!options_.fast_forward) {
    return;
  }
  // Parked boards' clocks lag the fleet clock; advance them (pure idle time
  // by construction — a parked board has no event before now_) so that
  // Fingerprints() and Now() observe exactly what a non-fast-forward run
  // would. Single-threaded: catch-up is an idle jump, not guest execution.
  for (size_t i = 0; i < boards_.size(); ++i) {
    Board& b = *boards_[i];
    if (b.runnable() && b.Now() < now_) {
      b.StepTo(now_);
      next_interesting_[i] = b.NextInterestingCycle();
      if (b.has_staged_tx()) {
        // Unreachable for a truly parked board, but keep the dirty-list
        // invariant: anything staged is drained at the next barrier.
        tx_dirty_.push_back(i);
      }
    }
  }
  // A frame injected at the final barrier may have been delivered during the
  // catch-up advance; its observation must not sit staged across Run calls.
  DrainFlowObservations();
}

void Fleet::Run(Cycles cycles) {
  CHERIOT_CHECK(booted_, "Fleet::Run() before Boot()");
  const Cycles end = now_ + cycles;
  while (now_ < end) {
    RunEpoch(NextEpochTarget(end));
  }
  CatchUp();
}

bool Fleet::RunUntil(const std::function<bool()>& pred, Cycles max_cycles) {
  CHERIOT_CHECK(booted_, "Fleet::RunUntil() before Boot()");
  const Cycles end = now_ + max_cycles;
  while (!pred()) {
    if (now_ >= end) {
      CatchUp();
      return false;
    }
    bool any_runnable = false;
    for (auto& board : boards_) {
      if (board->runnable()) {
        any_runnable = true;
        break;
      }
    }
    if (!any_runnable) {
      LOG_WARN("fleet: no runnable boards before predicate held");
      CatchUp();
      return pred();
    }
    RunEpoch(NextEpochTarget(end));
  }
  CatchUp();
  return true;
}

void Fleet::LogAdvance() {
  if (now_ > logged_now_) {
    FleetOp op;
    op.kind = FleetOp::Kind::kAdvance;
    op.to = now_;
    fleet_log_.push_back(std::move(op));
    logged_now_ = now_;
  }
}

void Fleet::PublishMqtt(const std::string& topic, const net::Bytes& payload) {
  LogAdvance();
  FleetOp op;
  op.kind = FleetOp::Kind::kMqtt;
  op.topic = topic;
  op.payload = payload;
  fleet_log_.push_back(std::move(op));
  gateway_emit_at_ = now_;
  gateway_.PublishMqtt(now_, topic, payload);
}

void Fleet::SendPing(net::Ipv4 dst, uint16_t id, uint16_t seq) {
  LogAdvance();
  FleetOp op;
  op.kind = FleetOp::Kind::kPing;
  op.dst = dst;
  op.id = id;
  op.seq = seq;
  fleet_log_.push_back(std::move(op));
  gateway_emit_at_ = now_;
  gateway_.SendPing(now_, dst, id, seq);
}

std::vector<trace::TraceRecorder*> Fleet::TraceRecorders() {
  std::vector<trace::TraceRecorder*> out;
  for (auto& board : boards_) {
    if (auto* tr = board->trace_recorder()) {
      out.push_back(tr);
    }
  }
  if (fabric_trace_) {
    out.push_back(fabric_trace_.get());
  }
  return out;
}

std::vector<const cov::CovRecorder*> Fleet::CovRecorders() {
  std::vector<const cov::CovRecorder*> out;
  for (auto& board : boards_) {
    if (auto* cr = board->cov_recorder()) {
      out.push_back(cr);
    }
  }
  return out;
}

void Fleet::BuildSnapshotContainer(snap::Container& c) {
  CHERIOT_CHECK(booted_, "Fleet::Snapshot() before Boot()");
  LogAdvance();
  c.kind = snap::kFleet;
  c.flags = snap::kHasReplayLog;
  if (options_.trace) {
    c.flags |= snap::kHasTrace;
  }
  if (options_.forensics) {
    c.flags |= snap::kHasForensics;
  }
  if (options_.cov) {
    c.flags |= snap::kHasCoverage;
  }
  {
    // Effective configuration + fleet-level state. host_threads and
    // fast_forward are deliberately absent: both are host-performance knobs
    // with bit-identical fingerprints (pinned by tests/fleet_test.cpp), so
    // snapshots taken at any worker count / fast-forward mode byte-match.
    snap::Writer w;
    w.U64(options_.epoch);
    w.U64(options_.board_link_latency);
    const net::WorldOptions& wo = options_.world;
    w.U64(wo.link_latency);
    w.U32(static_cast<uint32_t>(wo.dns_table.size()));
    for (const auto& [name, ip] : wo.dns_table) {
      w.Str(name);
      w.U32(ip);
    }
    w.U32(wo.ntp_unix_base);
    w.I32(wo.drop_every_nth_tcp);
    w.Bool(wo.mqtt_fanout);
    w.U32(options_.machine.sram_base);
    w.U32(options_.machine.sram_size);
    w.Bool(options_.machine.uart_echo);
    w.U64(options_.system.tick_quantum);
    w.U64(options_.system.idle_chunk);
    w.Bool(options_.trace);
    if (options_.trace) {
      w.U64(options_.trace_options.ring_capacity);
      w.Bool(options_.trace_options.profile);
    }
    w.Bool(options_.forensics);
    if (options_.forensics) {
      w.U64(options_.forensics_options.ring_capacity);
      w.U64(options_.forensics_options.reboot_history);
      w.Bool(options_.forensics_options.capture_crash_scene);
      w.U64(options_.forensics_options.scene_limit);
    }
    w.Bool(options_.cov);
    if (options_.cov) {
      w.Bool(options_.cov_options.mmio_granules);
    }
    w.U32(static_cast<uint32_t>(boards_.size()));
    w.U64(now_);
    w.U64(frames_exchanged_);
    c.sections.push_back({snap::kSecFleet, w.Take()});
  }
  {
    snap::Writer w;
    fabric_.SerializeState(w);
    c.sections.push_back({snap::kSecFabric, w.Take()});
  }
  if (fabric_trace_) {
    snap::Writer w;
    fabric_trace_->SerializeState(w);
    c.sections.push_back({snap::kSecTrace, w.Take()});
  }
  {
    // Every board's state sections as a nested container, plus its recorder
    // rings — the restore verify then doubles as the proof that trace and
    // health exports survive a restore byte-identically.
    snap::Writer w;
    w.U32(static_cast<uint32_t>(boards_.size()));
    for (auto& board : boards_) {
      snap::Container bc;
      bc.kind = snap::kBoard;
      bc.flags = snap::kEmbedded;
      board->BuildStateSections(bc);
      if (auto* tr = board->trace_recorder()) {
        snap::Writer tw;
        tr->SerializeState(tw);
        bc.sections.push_back({snap::kSecTrace, tw.Take()});
      }
      if (auto* fr = board->forensics_recorder()) {
        snap::Writer fw;
        fr->SerializeState(fw);
        bc.sections.push_back({snap::kSecForensics, fw.Take()});
      }
      if (auto* cr = board->cov_recorder()) {
        snap::Writer cw;
        cr->SerializeState(cw);
        bc.sections.push_back({snap::kSecCoverage, cw.Take()});
      }
      w.Blob(bc.Assemble());
    }
    c.sections.push_back({snap::kSecFleetBoards, w.Take()});
  }
  {
    snap::Writer w;
    w.U64(fleet_log_.size());
    for (const FleetOp& op : fleet_log_) {
      w.U8(static_cast<uint8_t>(op.kind));
      switch (op.kind) {
        case FleetOp::Kind::kAdvance:
          w.U64(op.to);
          break;
        case FleetOp::Kind::kMqtt:
          w.Str(op.topic);
          w.Blob(op.payload);
          break;
        case FleetOp::Kind::kPing:
          w.U32(op.dst);
          w.U16(op.id);
          w.U16(op.seq);
          break;
      }
    }
    c.sections.push_back({snap::kSecFleetLog, w.Take()});
  }
}

void Fleet::Snapshot(std::vector<uint8_t>& out) {
  snap::Container c;
  BuildSnapshotContainer(c);
  out = c.Assemble();
}

std::unique_ptr<Fleet> Fleet::Restore(const uint8_t* data, size_t size,
                                      const ImageResolver& images,
                                      int host_threads, bool flow,
                                      flow::FlowOptions flow_options) {
  snap::Container c = snap::Container::Parse(data, size);
  if (c.kind != snap::kFleet) {
    throw snap::SnapshotError("not a fleet snapshot");
  }
  FleetOptions o;
  uint32_t board_count = 0;
  {
    snap::Reader r(c.Require(snap::kSecFleet).body);
    o.epoch = r.U64();
    o.board_link_latency = r.U64();
    o.world.link_latency = r.U64();
    o.world.dns_table.clear();
    const uint32_t dns = r.U32();
    for (uint32_t i = 0; i < dns; ++i) {
      const std::string name = r.Str();
      o.world.dns_table[name] = r.U32();
    }
    o.world.ntp_unix_base = r.U32();
    o.world.drop_every_nth_tcp = r.I32();
    o.world.mqtt_fanout = r.Bool();
    o.machine.sram_base = r.U32();
    o.machine.sram_size = r.U32();
    o.machine.uart_echo = r.Bool();
    o.system.tick_quantum = r.U64();
    o.system.idle_chunk = r.U64();
    o.trace = r.Bool();
    if (o.trace) {
      o.trace_options.ring_capacity = r.U64();
      o.trace_options.profile = r.Bool();
    }
    o.forensics = r.Bool();
    if (o.forensics) {
      o.forensics_options.ring_capacity = r.U64();
      o.forensics_options.reboot_history = r.U64();
      o.forensics_options.capture_crash_scene = r.Bool();
      o.forensics_options.scene_limit = r.U64();
    }
    o.cov = r.Bool();
    if (o.cov) {
      o.cov_options.mmio_granules = r.Bool();
    }
    board_count = r.U32();
    r.U64();  // now_: reproduced by the replay, compared by the verify
    r.U64();  // frames_exchanged_: ditto
    r.ExpectEnd("FLET");
  }
  o.host_threads = host_threads;
  o.flow = flow;
  o.flow_options = flow_options;
  auto fleet = std::make_unique<Fleet>(std::move(o));
  for (uint32_t i = 0; i < board_count; ++i) {
    fleet->AddBoard(images(static_cast<int>(i)));
  }
  fleet->Boot();
  {
    snap::Reader r(c.Require(snap::kSecFleetLog).body);
    const uint64_t n_ops = r.U64();
    for (uint64_t i = 0; i < n_ops; ++i) {
      switch (r.U8()) {
        case 0: {  // kAdvance
          const Cycles to = r.U64();
          if (to < fleet->now_) {
            throw snap::SnapshotError(
                "fleet replay diverged: advance behind the fleet clock");
          }
          if (to > fleet->now_) {
            fleet->Run(to - fleet->now_);
          }
          break;
        }
        case 1: {  // kMqtt
          const std::string topic = r.Str();
          const net::Bytes payload = r.Blob();
          fleet->PublishMqtt(topic, payload);
          break;
        }
        case 2: {  // kPing
          const net::Ipv4 dst = r.U32();
          const uint16_t id = r.U16();
          const uint16_t seq = r.U16();
          fleet->SendPing(dst, id, seq);
          break;
        }
        default:
          throw snap::SnapshotError("unknown fleet replay op");
      }
    }
    r.ExpectEnd("FLOG");
  }
  // Verify: the restored fleet must re-serialize to the snapshot, byte for
  // byte — boards, fabric, recorders and the rebuilt control log alike.
  snap::Container check;
  fleet->BuildSnapshotContainer(check);
  if (check.sections.size() != c.sections.size()) {
    throw snap::SnapshotError("fleet snapshot verify failed: section count");
  }
  for (size_t i = 0; i < c.sections.size(); ++i) {
    if (check.sections[i].id != c.sections[i].id ||
        check.sections[i].body != c.sections[i].body) {
      throw snap::SnapshotError("fleet snapshot verify failed at section " +
                                snap::SectionName(c.sections[i].id));
    }
  }
  return fleet;
}

std::vector<Board::Fingerprint> Fleet::Fingerprints() {
  std::vector<Board::Fingerprint> out;
  out.reserve(boards_.size());
  for (auto& board : boards_) {
    out.push_back(board->fingerprint());
  }
  return out;
}

}  // namespace cheriot::sim

#include "src/sim/fleet.h"

#include <algorithm>
#include <cstdlib>

#include "src/base/check.h"
#include "src/base/log.h"

namespace cheriot::sim {

namespace {

// Validates options before any member that depends on them is constructed
// (the fabric and gateway are built in the member-initialiser list), so a
// bad epoch dies with a clear message instead of a misconfigured fleet.
FleetOptions ValidatedOptions(FleetOptions o) {
  CHERIOT_CHECK(o.board_link_latency > 0,
                "FleetOptions::board_link_latency must be positive");
  CHERIOT_CHECK(o.epoch <= o.board_link_latency,
                "FleetOptions::epoch must not exceed the board link latency "
                "(the conservative-lookahead bound)");
  if (const char* env = std::getenv("CHERIOT_FLEET_FAST_FORWARD")) {
    o.fast_forward = !(env[0] == '0' && env[1] == '\0');
  }
  return o;
}

}  // namespace

Fleet::Fleet(FleetOptions options)
    : options_(ValidatedOptions(std::move(options))),
      gateway_(options_.world) {
  // The gateway sits inside the switch: port latency 0, so a frame
  // transmitted by a board at t is processed by the gateway "at t" and the
  // reply crosses only the destination board's link — reproducing the
  // single-board NetWorld round-trip of exactly one link latency.
  gateway_port_ = fabric_.AttachPort(0, [this](Cycles due, Fabric::Frame f) {
    gateway_inbox_.emplace_back(due, std::move(f));
  });
  gateway_.set_emit([this](net::Bytes frame) { GatewayEmit(std::move(frame)); });
  if (options_.trace) {
    fabric_trace_ = std::make_unique<trace::TraceRecorder>(options_.trace_options);
    fabric_trace_->SetLabel("fabric");
    fabric_trace_->SetBoardIndex(-1);
    fabric_.set_trace(fabric_trace_.get());
  }
}

Fleet::~Fleet() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) {
      w.join();
    }
  }
}

int Fleet::AddBoard(FirmwareImage image) {
  CHERIOT_CHECK(!booted_, "AddBoard() after Boot()");
  const int index = static_cast<int>(boards_.size());
  BoardOptions opts;
  opts.index = index;
  opts.mac = MacForIndex(index);
  opts.machine = options_.machine;
  opts.system = options_.system;
  // The fleet-level switch governs the per-board kernel idle fast-forward
  // too, so one flag (or the environment override) flips the whole stack.
  opts.system.fast_forward = options_.fast_forward;
  boards_.push_back(std::make_unique<Board>(std::move(image), opts));
  Board* board = boards_.back().get();
  if (options_.trace) {
    board->EnableTrace(options_.trace_options);
  }
  if (options_.forensics) {
    board->EnableForensics(options_.forensics_options);
  }
  board_ports_.push_back(fabric_.AttachPort(
      options_.board_link_latency,
      [this, board, index](Cycles due, Fabric::Frame f) {
        board->InjectAt(due, std::move(f));
        // A newly injected frame is an interesting event: clamp the cached
        // bound so a parked board (or one parked this barrier) is woken for
        // the epoch containing the delivery. Guarded because the fabric can
        // in principle deliver before Boot() sizes the cache.
        if (static_cast<size_t>(index) < next_interesting_.size() &&
            due < next_interesting_[static_cast<size_t>(index)]) {
          next_interesting_[static_cast<size_t>(index)] = due;
        }
      }));
  return index;
}

void Fleet::Boot() {
  CHERIOT_CHECK(!boards_.empty(), "Fleet::Boot() with no boards");
  epoch_ = options_.epoch != 0 ? options_.epoch : fabric_.MinLinkLatency();
  CHERIOT_CHECK(epoch_ > 0 && epoch_ <= fabric_.MinLinkLatency(),
                "epoch length must be in (0, min link latency]");
  for (auto& board : boards_) {
    board->Boot();
  }
  // Zero-initialised next-event cache: every board looks busy, so the first
  // epoch is conservative and steps everyone, refreshing the cache with real
  // bounds.
  next_interesting_.assign(boards_.size(), 0);
  worker_dirty_.resize(std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(std::max(options_.host_threads, 1)),
                          boards_.size())));
  // Should firmware ever stage frames during boot, drain them at the first
  // barrier rather than losing them to the dirty-list optimisation.
  for (size_t i = 0; i < boards_.size(); ++i) {
    if (boards_[i]->has_staged_tx()) {
      tx_dirty_.push_back(i);
    }
  }
  booted_ = true;
}

void Fleet::GatewayEmit(net::Bytes frame) {
  fabric_.Transmit(gateway_port_, gateway_emit_at_, frame);
}

Cycles Fleet::NextEpochTarget(Cycles end) const {
  const Cycles conservative = std::min<Cycles>(now_ + epoch_, end);
  if (!options_.fast_forward) {
    return conservative;
  }
  // Coarsening is sound only when EVERY runnable board is provably idle past
  // now_: an idle board cannot execute, so it cannot transmit, so no frame
  // can become due inside the extended epoch. One busy board (its next
  // interesting cycle is its own clock, <= now_ modulo overshoot) forces the
  // conservative bound — it could transmit at any cycle.
  Cycles next = System::kForever;
  for (size_t i = 0; i < boards_.size(); ++i) {
    if (!boards_[i]->runnable()) {
      continue;
    }
    const Cycles n = next_interesting_[i];
    if (n <= now_) {
      return conservative;
    }
    next = std::min(next, n);
  }
  if (next == System::kForever) {
    // Nothing will ever happen again (all exited/blocked, no timers, no
    // frames in flight): jump the fleet clock straight to the horizon.
    return end;
  }
  // Never shorter than the conservative epoch (coarsening only), never past
  // the horizon. Landing exactly ON the next event is correct: the barrier's
  // Run budget ends there, so the waking board executes in the following
  // epoch, which is conservative because that board is then busy.
  return std::min(std::max(next, conservative), end);
}

void Fleet::BuildStepList(Cycles target) {
  step_list_.clear();
  for (size_t i = 0; i < boards_.size(); ++i) {
    if (!boards_[i]->runnable()) {
      continue;
    }
    // Parking: a board whose next interesting cycle lies beyond the target
    // cannot execute a single instruction before the barrier — stepping it
    // would only idle its clock forward, which CatchUp() does lazily in one
    // jump at the end of the run. (A busy board's bound is its own clock; if
    // that already passed the target, StepTo would be a no-op anyway.)
    if (options_.fast_forward && next_interesting_[i] > target) {
      ++boards_skipped_;
      continue;
    }
    step_list_.push_back(i);
  }
  boards_stepped_ += step_list_.size();
}

void Fleet::StartWorkers() {
  const size_t n = std::min<size_t>(
      static_cast<size_t>(options_.host_threads), boards_.size());
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (worker_dirty_.size() < workers_.size()) {
    worker_dirty_.resize(workers_.size());
  }
}

void Fleet::WorkerLoop(size_t worker_id) {
  uint64_t seen = 0;
  for (;;) {
    Cycles target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      target = step_target_;
    }
    try {
      for (;;) {
        const size_t k = next_step_.fetch_add(1);
        if (k >= step_list_.size()) {
          break;
        }
        const size_t i = step_list_[k];
        boards_[i]->StepTo(target);
        next_interesting_[i] = boards_[i]->NextInterestingCycle();
        if (boards_[i]->has_staged_tx()) {
          worker_dirty_[worker_id].push_back(i);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!worker_error_) {
        worker_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void Fleet::StepBoards(Cycles target) {
  if (options_.host_threads <= 1 || boards_.size() <= 1) {
    for (size_t i : step_list_) {
      boards_[i]->StepTo(target);
      next_interesting_[i] = boards_[i]->NextInterestingCycle();
      if (boards_[i]->has_staged_tx()) {
        worker_dirty_[0].push_back(i);
      }
    }
    return;
  }
  if (workers_.empty()) {
    StartWorkers();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_step_.store(0);
    step_target_ = target;
    workers_running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_running_ == 0; });
    if (worker_error_) {
      std::exception_ptr e = worker_error_;
      worker_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Fleet::ExchangeFrames() {
  // Sharded exchange: only boards that actually staged frames are drained.
  // Workers claim boards in nondeterministic order, so the merged dirty list
  // is sorted to restore the contract's board-index drain order. A board can
  // appear at most once per epoch (one worker steps it once); the sort is
  // over a handful of indices, not all N boards.
  for (auto& dirty : worker_dirty_) {
    tx_dirty_.insert(tx_dirty_.end(), dirty.begin(), dirty.end());
    dirty.clear();
  }
  std::sort(tx_dirty_.begin(), tx_dirty_.end());
  for (size_t i : tx_dirty_) {
    for (auto& [at, frame] : boards_[i]->DrainTx()) {
      ++frames_exchanged_;
      fabric_.Transmit(board_ports_[i], at, frame);
    }
  }
  tx_dirty_.clear();
  std::stable_sort(gateway_inbox_.begin(), gateway_inbox_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // The gateway may emit new board-bound frames while processing (replies,
  // forwards); those go straight to board ports. It never sends to itself.
  std::vector<std::pair<Cycles, net::Bytes>> inbox;
  inbox.swap(gateway_inbox_);
  for (auto& [at, frame] : inbox) {
    gateway_emit_at_ = at;
    gateway_.OnFrame(at, frame);
  }
}

void Fleet::RunEpoch(Cycles target) {
  BuildStepList(target);
  StepBoards(target);
  now_ = target;
  ++barriers_;
  ExchangeFrames();
}

void Fleet::CatchUp() {
  if (!options_.fast_forward) {
    return;
  }
  // Parked boards' clocks lag the fleet clock; advance them (pure idle time
  // by construction — a parked board has no event before now_) so that
  // Fingerprints() and Now() observe exactly what a non-fast-forward run
  // would. Single-threaded: catch-up is an idle jump, not guest execution.
  for (size_t i = 0; i < boards_.size(); ++i) {
    Board& b = *boards_[i];
    if (b.runnable() && b.Now() < now_) {
      b.StepTo(now_);
      next_interesting_[i] = b.NextInterestingCycle();
      if (b.has_staged_tx()) {
        // Unreachable for a truly parked board, but keep the dirty-list
        // invariant: anything staged is drained at the next barrier.
        tx_dirty_.push_back(i);
      }
    }
  }
}

void Fleet::Run(Cycles cycles) {
  CHERIOT_CHECK(booted_, "Fleet::Run() before Boot()");
  const Cycles end = now_ + cycles;
  while (now_ < end) {
    RunEpoch(NextEpochTarget(end));
  }
  CatchUp();
}

bool Fleet::RunUntil(const std::function<bool()>& pred, Cycles max_cycles) {
  CHERIOT_CHECK(booted_, "Fleet::RunUntil() before Boot()");
  const Cycles end = now_ + max_cycles;
  while (!pred()) {
    if (now_ >= end) {
      CatchUp();
      return false;
    }
    bool any_runnable = false;
    for (auto& board : boards_) {
      if (board->runnable()) {
        any_runnable = true;
        break;
      }
    }
    if (!any_runnable) {
      LOG_WARN("fleet: no runnable boards before predicate held");
      CatchUp();
      return pred();
    }
    RunEpoch(NextEpochTarget(end));
  }
  CatchUp();
  return true;
}

void Fleet::PublishMqtt(const std::string& topic, const net::Bytes& payload) {
  gateway_emit_at_ = now_;
  gateway_.PublishMqtt(now_, topic, payload);
}

void Fleet::SendPing(net::Ipv4 dst, uint16_t id, uint16_t seq) {
  gateway_emit_at_ = now_;
  gateway_.SendPing(now_, dst, id, seq);
}

std::vector<trace::TraceRecorder*> Fleet::TraceRecorders() {
  std::vector<trace::TraceRecorder*> out;
  for (auto& board : boards_) {
    if (auto* tr = board->trace_recorder()) {
      out.push_back(tr);
    }
  }
  if (fabric_trace_) {
    out.push_back(fabric_trace_.get());
  }
  return out;
}

std::vector<Board::Fingerprint> Fleet::Fingerprints() {
  std::vector<Board::Fingerprint> out;
  out.reserve(boards_.size());
  for (auto& board : boards_) {
    out.push_back(board->fingerprint());
  }
  return out;
}

}  // namespace cheriot::sim

// One simulated device: a Machine, its firmware and the System hosting it,
// plus the board's network identity and the frame staging queues the Fleet
// uses to exchange traffic at epoch barriers. A Board is fully self-contained
// (no shared mutable state), so different boards may be stepped on different
// host threads concurrently; a single board is only ever stepped by one
// thread at a time.
#ifndef SRC_SIM_BOARD_H_
#define SRC_SIM_BOARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/cov/coverage.h"
#include "src/flow/flow.h"
#include "src/health/forensics.h"
#include "src/hw/machine.h"
#include "src/kernel/system.h"
#include "src/snap/snapshot.h"
#include "src/trace/trace.h"

namespace cheriot::sim {

struct BoardOptions {
  int index = 0;
  // NIC MAC; defaults (via MacForIndex) to 02:00:00:00:xx:yy with the board
  // index + 2 in the low bytes, so board 0 matches the historical
  // single-board address 02:00:00:00:00:02.
  EthernetDevice::Mac mac = {2, 0, 0, 0, 0, 2};
  MachineConfig machine;
  SystemOptions system;
};

EthernetDevice::Mac MacForIndex(int index);

class Board {
 public:
  using Frame = std::vector<uint8_t>;

  // Everything a determinism test needs to compare two runs of "the same"
  // board: timing, memory traffic, trap/idle accounting and console output.
  struct Fingerprint {
    Cycles now = 0;
    uint64_t accesses = 0;
    uint64_t cap_loads = 0;
    uint64_t cap_stores = 0;
    uint64_t traps = 0;
    Cycles idle_cycles = 0;
    uint64_t uart_bytes = 0;
    uint64_t uart_hash = 0;
    uint32_t reboots = 0;
    bool operator==(const Fingerprint&) const = default;
  };

  Board(FirmwareImage image, const BoardOptions& options);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  // Creates and attaches a flight recorder (src/trace) for this board,
  // labeled "board<index>". Must be called before Boot() so boot cycles are
  // attributed and the name tables are published. Returns the recorder; the
  // board owns it.
  trace::TraceRecorder* EnableTrace(trace::TraceOptions options = {});
  trace::TraceRecorder* trace_recorder() { return trace_.get(); }

  // Creates and attaches a crash-forensics recorder (src/health) for this
  // board, labeled "board<index>". Must be called before Boot() so the name
  // tables are published. Returns the recorder; the board owns it.
  health::ForensicsRecorder* EnableForensics(
      health::ForensicsOptions options = {});
  health::ForensicsRecorder* forensics_recorder() { return forensics_.get(); }

  // Creates and attaches an authority-coverage recorder (src/cov) for this
  // board, labeled "board<index>". Must be called before Boot() so the name
  // and grant tables are published. Returns the recorder; the board owns it.
  cov::CovRecorder* EnableCoverage(cov::CovOptions options = {});
  cov::CovRecorder* cov_recorder() { return cov_.get(); }

  void Boot();

  // Runs the guest forward to (at least) absolute cycle `target`. The clock
  // may overshoot by the tail of the last guest operation; the overshoot is
  // bounded and a deterministic function of this board's own history.
  System::RunResult StepTo(Cycles target);

  // True if StepTo can still make progress (not all-exited, and not
  // deadlocked without any newly injected frame to wake it).
  bool runnable() const;

  // The earliest absolute cycle at which this board could do anything
  // observable: its current clock if a thread is runnable (busy), else the
  // earliest timer wake / revoker completion / pending frame delivery;
  // System::kForever when nothing is scheduled (all exited or deadlocked).
  // The Fleet's adaptive epoch coarsening and board parking key off this —
  // a board whose next interesting cycle lies beyond an epoch's target
  // provably cannot execute, transmit or change state inside that epoch.
  Cycles NextInterestingCycle();

  // True if frames are staged for the next barrier exchange (the Fleet's
  // dirty-list optimisation: only boards that transmitted are drained).
  bool has_staged_tx() const { return !tx_staged_.empty(); }

  // One transmitted frame with its TX cycle and host-side provenance. The
  // flow id is assigned unconditionally at transmit (board index + per-board
  // sequence) so snapshots and replays are identical whether or not a flow
  // recorder is attached; it never exists in guest-visible bytes.
  struct TxFrame {
    Cycles at = 0;
    Frame frame;
    flow::FlowId flow;
  };

  // Takes this epoch's transmitted frames, stamped with their TX cycle.
  std::vector<TxFrame> DrainTx();
  // Schedules a frame to arrive at absolute cycle `due` (FIFO-stable for
  // equal timestamps). `flow` is the frame's host-side provenance; defaulted
  // (= untracked) for hand-injected test frames.
  void InjectAt(Cycles due, Frame frame, flow::FlowId flow = {});

  // --- Flow observations (PR 9) --------------------------------------------
  // When staging is on (Fleet flow mode), PumpRx records one observation per
  // delivered or fault-dropped frame; the Fleet drains them at epoch
  // barriers in board-index order and feeds the FlowRecorder. Purely
  // host-side: staging on/off cannot move a guest cycle.
  struct FlowObs {
    enum class Kind : uint8_t { kDelivered = 0, kDropped = 1 };
    Kind kind = Kind::kDelivered;
    flow::FlowId flow;
    Cycles at = 0;
    uint32_t bytes = 0;
  };
  void set_flow_staging(bool on) { flow_staging_ = on; }
  std::vector<FlowObs> DrainFlowObs();

  // NIC counters (fed to the fleet metrics time-series; maintained whether
  // or not a trace recorder is attached).
  uint64_t nic_tx_frames() const { return nic_tx_frames_; }
  uint64_t nic_rx_frames() const { return nic_rx_frames_; }
  uint64_t nic_frames_dropped() const { return nic_frames_dropped_; }

  Fingerprint fingerprint();

  // --- Snapshot/restore (DESIGN.md §10) ------------------------------------
  //
  // Snapshot() serializes the whole board — SRAM + tag/revocation bitmaps,
  // capability registers and trusted stacks (kernel thread state), scheduler
  // and futex queues, allocator mirrors + provenance, device state including
  // pending NIC deliveries, recorder rings, and the replay log of external
  // inputs — into a versioned container. Byte-stable: two snapshots of the
  // same state are byte-identical.
  //
  // Restore() rebuilds a board from a snapshot. The firmware image is a
  // host-side artifact (native closures) and cannot cross a snapshot, so the
  // caller supplies the same image the snapshot's board was built from.
  // Two paths, chosen automatically:
  //  - Cold/direct (flag kColdRestorable: post-Boot, no guest instruction
  //    executed): the loader is skipped — the boot-time capability graph is
  //    deserialized and host handles rebound (warm-boot fixture path).
  //  - Replay (general, mid-run): guest fibers hold live host stacks that
  //    cannot be byte-restored, so the board re-boots and re-executes the
  //    logged external inputs (StepTo targets, injected frames); PR 6's
  //    cycle-transparent pauses make this reproduce the run exactly.
  // Both paths end with a verify: every state section of the restored board
  // is re-serialized and byte-compared against the snapshot; a mismatch
  // throws snap::SnapshotError.
  void Snapshot(std::vector<uint8_t>& out);
  static std::unique_ptr<Board> Restore(const uint8_t* data, size_t size,
                                        FirmwareImage image);
  static std::unique_ptr<Board> Restore(const std::vector<uint8_t>& blob,
                                        FirmwareImage image) {
    return Restore(blob.data(), blob.size(), std::move(image));
  }

  // The replay log records every external input (StepTo / InjectAt) so a
  // mid-run snapshot can be restored by re-execution. On by default; the
  // Fleet disables it per board (it keeps its own whole-fleet control log),
  // and long-lived boards that never snapshot can opt out to stop the log
  // growing without bound.
  void set_op_log_enabled(bool on) { op_log_enabled_ = on; }
  size_t op_log_size() const { return op_log_.size(); }

  // Restores board state sections from an already-parsed container onto a
  // booted board (Fleet embedded-board restore; the Fleet replays control
  // ops itself and then verifies). Not for standalone use.
  void RestoreStateSections(const snap::Container& c);
  // Serializes the machine/kernel state sections (no OPTS/BOOT/RLOG) into
  // `c` — the building block shared by Snapshot(), the Fleet's embedded
  // per-board blobs and the forensics crash-scene capture.
  void BuildStateSections(snap::Container& c);

  // Installs the schedule-exploration arbiter (src/kernel/schedule_arbiter.h)
  // on this board: kernel/scheduler decision points plus the board-level
  // NIC-loss injection point in PumpRx. Null detaches. Host handle — never
  // serialized; re-install after Restore().
  void SetArbiter(ScheduleArbiter* arbiter) {
    arbiter_ = arbiter;
    system_.SetArbiter(arbiter);
  }

  Cycles Now() { return machine_.clock().now(); }
  int index() const { return options_.index; }
  const EthernetDevice::Mac& mac() const { return options_.mac; }
  Machine& machine() { return machine_; }
  System& system() { return system_; }
  System::RunResult last_result() const { return last_result_; }

 private:
  struct BoardOp {
    enum class Kind : uint8_t { kStep = 0, kInject = 1 };
    Kind kind = Kind::kStep;
    Cycles a = 0;  // kStep: absolute target; kInject: clock at injection
    Cycles b = 0;  // kInject: absolute due cycle
    Frame frame;   // kInject only
    flow::FlowId flow;  // kInject only: the frame's provenance
  };

  struct RxFrame {
    Frame frame;
    flow::FlowId flow;
  };

  void PumpRx();
  void SerializeBoardSection(snap::Writer& w) const;
  void RestoreBoardSection(snap::Reader& r);
  // Full container for Snapshot(): OPTS + BOOT + state sections + recorder
  // sections + RLOG.
  void BuildSnapshotContainer(snap::Container& c);
  std::vector<uint8_t> SerializeCrashScene();

  BoardOptions options_;
  Machine machine_;
  System system_;
  std::unique_ptr<trace::TraceRecorder> trace_;
  std::unique_ptr<health::ForensicsRecorder> forensics_;
  std::unique_ptr<cov::CovRecorder> cov_;
  std::vector<TxFrame> tx_staged_;
  std::multimap<Cycles, RxFrame> rx_pending_;
  uint32_t tx_seq_ = 0;  // flow-id sequence; ticks on every transmit
  std::vector<FlowObs> flow_obs_;
  bool flow_staging_ = false;
  uint64_t nic_tx_frames_ = 0;
  uint64_t nic_rx_frames_ = 0;
  uint64_t nic_frames_dropped_ = 0;
  System::RunResult last_result_ = System::RunResult::kBudgetExhausted;
  bool injected_since_deadlock_ = false;
  bool booted_ = false;
  std::vector<BoardOp> op_log_;
  bool op_log_enabled_ = true;
  ScheduleArbiter* arbiter_ = nullptr;
  uint32_t rx_frame_seq_ = 0;  // kNicLoss decision subject
  // Recorder options as passed to Enable*(), re-applied on replay restore.
  trace::TraceOptions trace_options_;
  health::ForensicsOptions forensics_options_;
  cov::CovOptions cov_options_;
};

}  // namespace cheriot::sim

#endif  // SRC_SIM_BOARD_H_

// One simulated device: a Machine, its firmware and the System hosting it,
// plus the board's network identity and the frame staging queues the Fleet
// uses to exchange traffic at epoch barriers. A Board is fully self-contained
// (no shared mutable state), so different boards may be stepped on different
// host threads concurrently; a single board is only ever stepped by one
// thread at a time.
#ifndef SRC_SIM_BOARD_H_
#define SRC_SIM_BOARD_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/health/forensics.h"
#include "src/hw/machine.h"
#include "src/kernel/system.h"
#include "src/trace/trace.h"

namespace cheriot::sim {

struct BoardOptions {
  int index = 0;
  // NIC MAC; defaults (via MacForIndex) to 02:00:00:00:xx:yy with the board
  // index + 2 in the low bytes, so board 0 matches the historical
  // single-board address 02:00:00:00:00:02.
  EthernetDevice::Mac mac = {2, 0, 0, 0, 0, 2};
  MachineConfig machine;
  SystemOptions system;
};

EthernetDevice::Mac MacForIndex(int index);

class Board {
 public:
  using Frame = std::vector<uint8_t>;

  // Everything a determinism test needs to compare two runs of "the same"
  // board: timing, memory traffic, trap/idle accounting and console output.
  struct Fingerprint {
    Cycles now = 0;
    uint64_t accesses = 0;
    uint64_t cap_loads = 0;
    uint64_t cap_stores = 0;
    uint64_t traps = 0;
    Cycles idle_cycles = 0;
    uint64_t uart_bytes = 0;
    uint64_t uart_hash = 0;
    uint32_t reboots = 0;
    bool operator==(const Fingerprint&) const = default;
  };

  Board(FirmwareImage image, const BoardOptions& options);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  // Creates and attaches a flight recorder (src/trace) for this board,
  // labeled "board<index>". Must be called before Boot() so boot cycles are
  // attributed and the name tables are published. Returns the recorder; the
  // board owns it.
  trace::TraceRecorder* EnableTrace(trace::TraceOptions options = {});
  trace::TraceRecorder* trace_recorder() { return trace_.get(); }

  // Creates and attaches a crash-forensics recorder (src/health) for this
  // board, labeled "board<index>". Must be called before Boot() so the name
  // tables are published. Returns the recorder; the board owns it.
  health::ForensicsRecorder* EnableForensics(
      health::ForensicsOptions options = {});
  health::ForensicsRecorder* forensics_recorder() { return forensics_.get(); }

  void Boot();

  // Runs the guest forward to (at least) absolute cycle `target`. The clock
  // may overshoot by the tail of the last guest operation; the overshoot is
  // bounded and a deterministic function of this board's own history.
  System::RunResult StepTo(Cycles target);

  // True if StepTo can still make progress (not all-exited, and not
  // deadlocked without any newly injected frame to wake it).
  bool runnable() const;

  // The earliest absolute cycle at which this board could do anything
  // observable: its current clock if a thread is runnable (busy), else the
  // earliest timer wake / revoker completion / pending frame delivery;
  // System::kForever when nothing is scheduled (all exited or deadlocked).
  // The Fleet's adaptive epoch coarsening and board parking key off this —
  // a board whose next interesting cycle lies beyond an epoch's target
  // provably cannot execute, transmit or change state inside that epoch.
  Cycles NextInterestingCycle();

  // True if frames are staged for the next barrier exchange (the Fleet's
  // dirty-list optimisation: only boards that transmitted are drained).
  bool has_staged_tx() const { return !tx_staged_.empty(); }

  // Takes this epoch's transmitted frames, stamped with their TX cycle.
  std::vector<std::pair<Cycles, Frame>> DrainTx();
  // Schedules a frame to arrive at absolute cycle `due` (FIFO-stable for
  // equal timestamps).
  void InjectAt(Cycles due, Frame frame);

  Fingerprint fingerprint();

  Cycles Now() { return machine_.clock().now(); }
  int index() const { return options_.index; }
  const EthernetDevice::Mac& mac() const { return options_.mac; }
  Machine& machine() { return machine_; }
  System& system() { return system_; }
  System::RunResult last_result() const { return last_result_; }

 private:
  void PumpRx();

  BoardOptions options_;
  Machine machine_;
  System system_;
  std::unique_ptr<trace::TraceRecorder> trace_;
  std::unique_ptr<health::ForensicsRecorder> forensics_;
  std::vector<std::pair<Cycles, Frame>> tx_staged_;
  std::multimap<Cycles, Frame> rx_pending_;
  System::RunResult last_result_ = System::RunResult::kBudgetExhausted;
  bool injected_since_deadlock_ = false;
  bool booted_ = false;
};

}  // namespace cheriot::sim

#endif  // SRC_SIM_BOARD_H_

#include "src/sim/board.h"

#include "src/base/check.h"
#include "src/snap/wire.h"

namespace cheriot::sim {

EthernetDevice::Mac MacForIndex(int index) {
  const uint32_t id = static_cast<uint32_t>(index) + 2;
  return {2, 0, 0, 0, static_cast<uint8_t>(id >> 8),
          static_cast<uint8_t>(id)};
}

Board::Board(FirmwareImage image, const BoardOptions& options)
    : options_(options),
      machine_(options.machine),
      system_(machine_, std::move(image), options.system) {
  machine_.ethernet().set_mac(options_.mac);
  machine_.ethernet().on_transmit = [this](Frame frame) {
    // Provenance is assigned unconditionally (the sequence ticks whether or
    // not anything records it), so flows-on and flows-off runs stay
    // bit-identical — including their snapshots.
    const flow::FlowId flow{static_cast<int16_t>(options_.index), tx_seq_++};
    ++nic_tx_frames_;
    if (auto* tr = machine_.trace()) {
      tr->OnNicTx(frame.size(), flow.origin, flow.seq);
    }
    tx_staged_.push_back({machine_.clock().now(), std::move(frame), flow});
  };
  machine_.clock().AddHook([this](Cycles) { PumpRx(); });
  machine_.AddNextEventSource([this]() -> std::optional<Cycles> {
    if (rx_pending_.empty()) {
      return std::nullopt;
    }
    return rx_pending_.begin()->first;
  });
}

trace::TraceRecorder* Board::EnableTrace(trace::TraceOptions options) {
  CHERIOT_CHECK(!booted_, "Board::EnableTrace() after Boot()");
  trace_options_ = options;
  trace_ = std::make_unique<trace::TraceRecorder>(options);
  trace_->SetLabel("board" + std::to_string(options_.index));
  trace_->SetBoardIndex(options_.index);
  trace::Attach(machine_, trace_.get());
  return trace_.get();
}

health::ForensicsRecorder* Board::EnableForensics(
    health::ForensicsOptions options) {
  CHERIOT_CHECK(!booted_, "Board::EnableForensics() after Boot()");
  forensics_ = std::make_unique<health::ForensicsRecorder>(options);
  forensics_->SetLabel("board" + std::to_string(options_.index));
  forensics_->SetBoardIndex(options_.index);
  health::Attach(machine_, forensics_.get());
  forensics_options_ = options;
  if (options.capture_crash_scene) {
    // Crash-scene capture (DESIGN.md §10): attach a full machine-state
    // snapshot to each crash record. The serializer is a pure observer —
    // zero guest cycles, pinned by the on/off fingerprint-diff test.
    forensics_->SetSceneHook([this] { return SerializeCrashScene(); });
  }
  return forensics_.get();
}

cov::CovRecorder* Board::EnableCoverage(cov::CovOptions options) {
  CHERIOT_CHECK(!booted_, "Board::EnableCoverage() after Boot()");
  cov_options_ = options;
  cov_ = std::make_unique<cov::CovRecorder>(options);
  cov_->SetLabel("board" + std::to_string(options_.index));
  cov_->SetBoardIndex(options_.index);
  cov::Attach(machine_, cov_.get());
  return cov_.get();
}

void Board::Boot() {
  system_.Boot();
  booted_ = true;
}

void Board::PumpRx() {
  const Cycles now = machine_.clock().now();
  while (!rx_pending_.empty() && rx_pending_.begin()->first <= now) {
    RxFrame& rx = rx_pending_.begin()->second;
    // kNicLoss injection point: the arbiter may drop a due frame instead of
    // delivering it (models lossy links; only branched under cheriot_mc
    // --inject-faults). The drop is observable: a kFrameDrop trace event, a
    // board counter, and a flow observation — not just retransmit echoes.
    const uint32_t seq = rx_frame_seq_++;
    if (arbiter_ != nullptr &&
        arbiter_->Choose(DecisionKind::kNicLoss, seq, 2) == 1) {
      ++nic_frames_dropped_;
      if (auto* tr = machine_.trace()) {
        tr->OnFrameDrop(flow::kDropNicLoss, rx.frame.size(), rx.flow.origin,
                        rx.flow.seq);
      }
      if (flow_staging_) {
        flow_obs_.push_back({FlowObs::Kind::kDropped, rx.flow, now,
                             static_cast<uint32_t>(rx.frame.size())});
      }
      rx_pending_.erase(rx_pending_.begin());
      continue;
    }
    ++nic_rx_frames_;
    if (auto* tr = machine_.trace()) {
      tr->OnNicRx(rx.frame.size(), rx.flow.origin, rx.flow.seq);
    }
    if (flow_staging_) {
      flow_obs_.push_back({FlowObs::Kind::kDelivered, rx.flow, now,
                           static_cast<uint32_t>(rx.frame.size())});
    }
    machine_.ethernet().HostInject(std::move(rx.frame));
    rx_pending_.erase(rx_pending_.begin());
  }
}

System::RunResult Board::StepTo(Cycles target) {
  if (op_log_enabled_) {
    // Every call is logged, uncompressed: last_result_ / deadlock-return
    // semantics depend on per-call behavior, so replay must re-execute the
    // exact call sequence, not a coalesced one.
    BoardOp op;
    op.kind = BoardOp::Kind::kStep;
    op.a = target;
    op_log_.push_back(std::move(op));
  }
  injected_since_deadlock_ = false;
  if (target > Now()) {
    last_result_ = system_.Run(target - Now());
  }
  return last_result_;
}

Cycles Board::NextInterestingCycle() {
  if (!runnable()) {
    return System::kForever;
  }
  return system_.NextEventCycle();
}

bool Board::runnable() const {
  switch (last_result_) {
    case System::RunResult::kAllExited:
      return false;
    case System::RunResult::kDeadlock:
      // A frame injected after the deadlock re-arms the ethernet IRQ path.
      return injected_since_deadlock_;
    default:
      return true;
  }
}

std::vector<Board::TxFrame> Board::DrainTx() {
  std::vector<TxFrame> out;
  out.swap(tx_staged_);
  return out;
}

std::vector<Board::FlowObs> Board::DrainFlowObs() {
  std::vector<FlowObs> out;
  out.swap(flow_obs_);
  return out;
}

void Board::InjectAt(Cycles due, Frame frame, flow::FlowId flow) {
  if (op_log_enabled_) {
    // Logged with the clock at injection: frame visibility depends on when
    // (between which StepTo calls) the frame arrived, and replay asserts the
    // clock matches before re-injecting.
    BoardOp op;
    op.kind = BoardOp::Kind::kInject;
    op.a = Now();
    op.b = due;
    op.frame = frame;
    op.flow = flow;
    op_log_.push_back(std::move(op));
  }
  rx_pending_.emplace(due, RxFrame{std::move(frame), flow});
  injected_since_deadlock_ = true;
}

// --- Snapshot/restore (DESIGN.md §10) --------------------------------------

namespace {

void SerializeFlowId(snap::Writer& w, const flow::FlowId& id) {
  w.I32(id.origin);
  w.U32(id.seq);
}

flow::FlowId DeserializeFlowId(snap::Reader& r) {
  flow::FlowId id;
  id.origin = static_cast<int16_t>(r.I32());
  id.seq = r.U32();
  return id;
}

void SerializeFrameList(snap::Writer& w,
                        const std::vector<Board::TxFrame>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const auto& tx : v) {
    w.U64(tx.at);
    w.Blob(tx.frame);
    SerializeFlowId(w, tx.flow);
  }
}

void AddSection(snap::Container& c, uint32_t id,
                const std::function<void(snap::Writer&)>& fill) {
  snap::Writer w;
  fill(w);
  c.sections.push_back({id, w.Take()});
}

void SerializeBoardOptions(snap::Writer& w, const BoardOptions& o) {
  w.I32(o.index);
  w.Bytes(o.mac.data(), o.mac.size());
  w.U32(o.machine.sram_base);
  w.U32(o.machine.sram_size);
  w.Bool(o.machine.uart_echo);
  w.U64(o.system.tick_quantum);
  w.U64(o.system.idle_chunk);
  w.Bool(o.system.fast_forward);
}

BoardOptions DeserializeBoardOptions(snap::Reader& r) {
  BoardOptions o;
  o.index = r.I32();
  r.BytesInto(o.mac.data(), o.mac.size());
  o.machine.sram_base = r.U32();
  o.machine.sram_size = r.U32();
  o.machine.uart_echo = r.Bool();
  o.system.tick_quantum = r.U64();
  o.system.idle_chunk = r.U64();
  o.system.fast_forward = r.Bool();
  return o;
}

}  // namespace

void Board::SerializeBoardSection(snap::Writer& w) const {
  w.Bool(booted_);
  w.U8(static_cast<uint8_t>(last_result_));
  w.Bool(injected_since_deadlock_);
  w.U32(tx_seq_);
  SerializeFrameList(w, tx_staged_);
  w.U32(static_cast<uint32_t>(rx_pending_.size()));
  for (const auto& [due, rx] : rx_pending_) {
    w.U64(due);
    w.Blob(rx.frame);
    SerializeFlowId(w, rx.flow);
  }
}

void Board::RestoreBoardSection(snap::Reader& r) {
  const bool was_booted = r.Bool();
  if (was_booted != booted_) {
    throw snap::SnapshotError("snapshot boot-state mismatch");
  }
  last_result_ = static_cast<System::RunResult>(r.U8());
  injected_since_deadlock_ = r.Bool();
  tx_seq_ = r.U32();
  tx_staged_.clear();
  const uint32_t n_tx = r.U32();
  for (uint32_t i = 0; i < n_tx; ++i) {
    TxFrame tx;
    tx.at = r.U64();
    tx.frame = r.Blob();
    tx.flow = DeserializeFlowId(r);
    tx_staged_.push_back(std::move(tx));
  }
  rx_pending_.clear();
  const uint32_t n_rx = r.U32();
  for (uint32_t i = 0; i < n_rx; ++i) {
    const Cycles due = r.U64();
    Frame frame = r.Blob();
    const flow::FlowId flow = DeserializeFlowId(r);
    rx_pending_.emplace(due, RxFrame{std::move(frame), flow});
  }
}

void Board::BuildStateSections(snap::Container& c) {
  CHERIOT_CHECK(booted_, "Board state sections require a booted board");
  AddSection(c, snap::kSecClock,
             [this](snap::Writer& w) { w.U64(machine_.clock().now()); });
  AddSection(c, snap::kSecMemory,
             [this](snap::Writer& w) { machine_.memory().SerializeState(w); });
  AddSection(c, snap::kSecIrq, [this](snap::Writer& w) {
    w.U32(machine_.irqs().pending_mask());
  });
  AddSection(c, snap::kSecDevices, [this](snap::Writer& w) {
    machine_.uart().SerializeState(w);
    machine_.leds().SerializeState(w);
    machine_.timer().SerializeState(w);
    machine_.ethernet().SerializeState(w);
    machine_.entropy().SerializeState(w);
  });
  AddSection(c, snap::kSecRevoker,
             [this](snap::Writer& w) { machine_.revoker().SerializeState(w); });
  AddSection(c, snap::kSecKernel,
             [this](snap::Writer& w) { system_.SerializeState(w); });
  AddSection(c, snap::kSecSched,
             [this](snap::Writer& w) { system_.sched().SerializeState(w); });
  AddSection(c, snap::kSecSwitcher, [this](snap::Writer& w) {
    w.U64(system_.switcher().trap_count());
  });
  AddSection(c, snap::kSecAlloc,
             [this](snap::Writer& w) { system_.alloc().SerializeState(w); });
  AddSection(c, snap::kSecBoard,
             [this](snap::Writer& w) { SerializeBoardSection(w); });
}

void Board::RestoreStateSections(const snap::Container& c) {
  auto with = [&c, this](uint32_t id, const std::function<void(snap::Reader&)>& fn) {
    const snap::Section& s = c.Require(id);
    snap::Reader r(s.body);
    fn(r);
    r.ExpectEnd(snap::SectionName(id).c_str());
  };
  with(snap::kSecClock,
       [this](snap::Reader& r) { machine_.clock().RestoreNow(r.U64()); });
  with(snap::kSecMemory,
       [this](snap::Reader& r) { machine_.memory().RestoreState(r); });
  with(snap::kSecIrq, [this](snap::Reader& r) {
    machine_.irqs().RestorePendingMask(r.U32());
  });
  with(snap::kSecDevices, [this](snap::Reader& r) {
    machine_.uart().RestoreState(r);
    machine_.leds().RestoreState(r);
    machine_.timer().RestoreState(r);
    machine_.ethernet().RestoreState(r);
    machine_.entropy().RestoreState(r);
  });
  with(snap::kSecRevoker,
       [this](snap::Reader& r) { machine_.revoker().RestoreState(r); });
  with(snap::kSecKernel, [this](snap::Reader& r) { system_.RestoreState(r); });
  with(snap::kSecSched,
       [this](snap::Reader& r) { system_.sched().RestoreState(r); });
  with(snap::kSecSwitcher, [this](snap::Reader& r) {
    system_.switcher().RestoreTrapCount(r.U64());
  });
  with(snap::kSecAlloc,
       [this](snap::Reader& r) { system_.alloc().RestoreState(r); });
  with(snap::kSecBoard, [this](snap::Reader& r) { RestoreBoardSection(r); });
  // Re-seat every host-side raw pointer the machine hands to its own
  // components (PR 1 raw clock hook, device trace pointers).
  machine_.RebindHostHandles();
}

std::vector<uint8_t> Board::SerializeCrashScene() {
  snap::Container c;
  c.kind = snap::kScene;
  BuildStateSections(c);
  return c.Assemble();
}

void Board::BuildSnapshotContainer(snap::Container& c) {
  CHERIOT_CHECK(booted_, "Board::Snapshot() before Boot()");
  bool any_started = false;
  for (const auto& t : system_.threads()) {
    any_started |= t.started;
  }
  const bool cold = !any_started && op_log_.empty() && trace_ == nullptr &&
                    forensics_ == nullptr && cov_ == nullptr;
  CHERIOT_CHECK(op_log_enabled_ || cold,
                "Board::Snapshot() mid-run with the replay log disabled "
                "produces an unrestorable snapshot");
  c.kind = snap::kBoard;
  c.flags = snap::kHasReplayLog;
  if (cold) {
    c.flags |= snap::kColdRestorable;
  }
  if (trace_ != nullptr) {
    c.flags |= snap::kHasTrace;
  }
  if (forensics_ != nullptr) {
    c.flags |= snap::kHasForensics;
  }
  if (cov_ != nullptr) {
    c.flags |= snap::kHasCoverage;
  }
  AddSection(c, snap::kSecOptions, [this](snap::Writer& w) {
    SerializeBoardOptions(w, options_);
    w.Bool(trace_ != nullptr);
    if (trace_ != nullptr) {
      w.U64(trace_options_.ring_capacity);
      w.Bool(trace_options_.profile);
    }
    w.Bool(forensics_ != nullptr);
    if (forensics_ != nullptr) {
      w.U64(forensics_options_.ring_capacity);
      w.U64(forensics_options_.reboot_history);
      w.Bool(forensics_options_.capture_crash_scene);
      w.U64(forensics_options_.scene_limit);
    }
    w.Bool(cov_ != nullptr);
    if (cov_ != nullptr) {
      w.Bool(cov_options_.mmio_granules);
    }
  });
  AddSection(c, snap::kSecBootInfo,
             [this](snap::Writer& w) { SerializeBootInfo(w, system_.boot()); });
  BuildStateSections(c);
  if (trace_ != nullptr) {
    AddSection(c, snap::kSecTrace,
               [this](snap::Writer& w) { trace_->SerializeState(w); });
  }
  if (forensics_ != nullptr) {
    AddSection(c, snap::kSecForensics,
               [this](snap::Writer& w) { forensics_->SerializeState(w); });
  }
  if (cov_ != nullptr) {
    AddSection(c, snap::kSecCoverage,
               [this](snap::Writer& w) { cov_->SerializeState(w); });
  }
  AddSection(c, snap::kSecReplayLog, [this](snap::Writer& w) {
    w.U64(op_log_.size());
    for (const BoardOp& op : op_log_) {
      w.U8(static_cast<uint8_t>(op.kind));
      w.U64(op.a);
      w.U64(op.b);
      w.Blob(op.frame);
      SerializeFlowId(w, op.flow);
    }
  });
}

void Board::Snapshot(std::vector<uint8_t>& out) {
  snap::Container c;
  BuildSnapshotContainer(c);
  out = c.Assemble();
}

std::unique_ptr<Board> Board::Restore(const uint8_t* data, size_t size,
                                      FirmwareImage image) {
  snap::Container c = snap::Container::Parse(data, size);
  if (c.kind != snap::kBoard) {
    throw snap::SnapshotError("not a board snapshot");
  }
  if (c.flags & snap::kEmbedded) {
    throw snap::SnapshotError(
        "fleet-embedded board state is not standalone-restorable");
  }

  const snap::Section& opts_sec = c.Require(snap::kSecOptions);
  snap::Reader opts(opts_sec.body);
  BoardOptions options = DeserializeBoardOptions(opts);
  const bool has_trace = opts.Bool();
  trace::TraceOptions trace_options;
  if (has_trace) {
    trace_options.ring_capacity = opts.U64();
    trace_options.profile = opts.Bool();
  }
  const bool has_forensics = opts.Bool();
  health::ForensicsOptions forensics_options;
  if (has_forensics) {
    forensics_options.ring_capacity = opts.U64();
    forensics_options.reboot_history = opts.U64();
    forensics_options.capture_crash_scene = opts.Bool();
    forensics_options.scene_limit = opts.U64();
  }
  const bool has_cov = opts.Bool();
  cov::CovOptions cov_options;
  if (has_cov) {
    cov_options.mmio_granules = opts.Bool();
  }
  opts.ExpectEnd("OPTS");

  auto board = std::make_unique<Board>(std::move(image), options);
  if (has_trace) {
    board->EnableTrace(trace_options);
  }
  if (has_forensics) {
    board->EnableForensics(forensics_options);
  }
  if (has_cov) {
    board->EnableCoverage(cov_options);
  }

  if (c.flags & snap::kColdRestorable) {
    // Direct restore: skip the loader, deserialize the boot-time capability
    // graph and rebind host handles, then lay the saved state sections on
    // top (the warm-boot fixture path).
    const snap::Section& boot_sec = c.Require(snap::kSecBootInfo);
    snap::Reader boot(boot_sec.body);
    board->system_.BootFromSnapshot(boot);
    boot.ExpectEnd("BOOT");
    board->booted_ = true;
    board->RestoreStateSections(c);
  } else {
    // Replay restore: boot normally, then re-execute the logged external
    // inputs. Execution is fully deterministic, so the replayed board lands
    // in the exact snapshotted state — which the verify below proves.
    board->Boot();
    const snap::Section& log_sec = c.Require(snap::kSecReplayLog);
    snap::Reader log(log_sec.body);
    const uint64_t n_ops = log.U64();
    for (uint64_t i = 0; i < n_ops; ++i) {
      const auto kind = static_cast<BoardOp::Kind>(log.U8());
      const Cycles a = log.U64();
      const Cycles b = log.U64();
      Frame frame = log.Blob();
      const flow::FlowId flow = DeserializeFlowId(log);
      switch (kind) {
        case BoardOp::Kind::kStep:
          board->StepTo(a);
          break;
        case BoardOp::Kind::kInject:
          if (board->Now() != a) {
            throw snap::SnapshotError(
                "replay diverged: injection clock mismatch");
          }
          board->InjectAt(b, std::move(frame), flow);
          break;
        default:
          throw snap::SnapshotError("unknown replay op");
      }
    }
    log.ExpectEnd("RLOG");
  }

  // Verify: every section of the restored board must re-serialize to the
  // exact bytes of the snapshot. This is what makes both restore paths
  // trustworthy — any drift between serialized state and reconstructed
  // state is caught here, not at cycle 10^9 of the resumed run.
  snap::Container check;
  board->BuildSnapshotContainer(check);
  if (check.sections.size() != c.sections.size()) {
    throw snap::SnapshotError("snapshot verify failed: section count");
  }
  for (size_t i = 0; i < c.sections.size(); ++i) {
    if (check.sections[i].id != c.sections[i].id ||
        check.sections[i].body != c.sections[i].body) {
      throw snap::SnapshotError("snapshot verify failed at section " +
                                snap::SectionName(c.sections[i].id));
    }
  }
  return board;
}

Board::Fingerprint Board::fingerprint() {
  Fingerprint fp;
  fp.now = machine_.clock().now();
  fp.accesses = machine_.memory().access_count();
  fp.cap_loads = machine_.memory().cap_load_count();
  fp.cap_stores = machine_.memory().cap_store_count();
  const std::string& uart = machine_.uart().output();
  fp.uart_bytes = uart.size();
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : uart) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  fp.uart_hash = h;
  if (booted_) {  // the TCB exists only after Boot()
    fp.traps = system_.switcher().trap_count();
    fp.idle_cycles = system_.sched().idle_cycles();
    for (const auto& comp : system_.boot().compartments) {
      fp.reboots += comp.reboot_count;
    }
  }
  return fp;
}

}  // namespace cheriot::sim

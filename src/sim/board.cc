#include "src/sim/board.h"

#include "src/base/check.h"

namespace cheriot::sim {

EthernetDevice::Mac MacForIndex(int index) {
  const uint32_t id = static_cast<uint32_t>(index) + 2;
  return {2, 0, 0, 0, static_cast<uint8_t>(id >> 8),
          static_cast<uint8_t>(id)};
}

Board::Board(FirmwareImage image, const BoardOptions& options)
    : options_(options),
      machine_(options.machine),
      system_(machine_, std::move(image), options.system) {
  machine_.ethernet().set_mac(options_.mac);
  machine_.ethernet().on_transmit = [this](Frame frame) {
    if (auto* tr = machine_.trace()) {
      tr->OnNicTx(frame.size());
    }
    tx_staged_.emplace_back(machine_.clock().now(), std::move(frame));
  };
  machine_.clock().AddHook([this](Cycles) { PumpRx(); });
  machine_.AddNextEventSource([this]() -> std::optional<Cycles> {
    if (rx_pending_.empty()) {
      return std::nullopt;
    }
    return rx_pending_.begin()->first;
  });
}

trace::TraceRecorder* Board::EnableTrace(trace::TraceOptions options) {
  CHERIOT_CHECK(!booted_, "Board::EnableTrace() after Boot()");
  trace_ = std::make_unique<trace::TraceRecorder>(options);
  trace_->SetLabel("board" + std::to_string(options_.index));
  trace_->SetBoardIndex(options_.index);
  trace::Attach(machine_, trace_.get());
  return trace_.get();
}

health::ForensicsRecorder* Board::EnableForensics(
    health::ForensicsOptions options) {
  CHERIOT_CHECK(!booted_, "Board::EnableForensics() after Boot()");
  forensics_ = std::make_unique<health::ForensicsRecorder>(options);
  forensics_->SetLabel("board" + std::to_string(options_.index));
  forensics_->SetBoardIndex(options_.index);
  health::Attach(machine_, forensics_.get());
  return forensics_.get();
}

void Board::Boot() {
  system_.Boot();
  booted_ = true;
}

void Board::PumpRx() {
  const Cycles now = machine_.clock().now();
  while (!rx_pending_.empty() && rx_pending_.begin()->first <= now) {
    if (auto* tr = machine_.trace()) {
      tr->OnNicRx(rx_pending_.begin()->second.size());
    }
    machine_.ethernet().HostInject(std::move(rx_pending_.begin()->second));
    rx_pending_.erase(rx_pending_.begin());
  }
}

System::RunResult Board::StepTo(Cycles target) {
  injected_since_deadlock_ = false;
  if (target > Now()) {
    last_result_ = system_.Run(target - Now());
  }
  return last_result_;
}

Cycles Board::NextInterestingCycle() {
  if (!runnable()) {
    return System::kForever;
  }
  return system_.NextEventCycle();
}

bool Board::runnable() const {
  switch (last_result_) {
    case System::RunResult::kAllExited:
      return false;
    case System::RunResult::kDeadlock:
      // A frame injected after the deadlock re-arms the ethernet IRQ path.
      return injected_since_deadlock_;
    default:
      return true;
  }
}

std::vector<std::pair<Cycles, Board::Frame>> Board::DrainTx() {
  std::vector<std::pair<Cycles, Frame>> out;
  out.swap(tx_staged_);
  return out;
}

void Board::InjectAt(Cycles due, Frame frame) {
  rx_pending_.emplace(due, std::move(frame));
  injected_since_deadlock_ = true;
}

Board::Fingerprint Board::fingerprint() {
  Fingerprint fp;
  fp.now = machine_.clock().now();
  fp.accesses = machine_.memory().access_count();
  fp.cap_loads = machine_.memory().cap_load_count();
  fp.cap_stores = machine_.memory().cap_store_count();
  const std::string& uart = machine_.uart().output();
  fp.uart_bytes = uart.size();
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : uart) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  fp.uart_hash = h;
  if (booted_) {  // the TCB exists only after Boot()
    fp.traps = system_.switcher().trap_count();
    fp.idle_cycles = system_.sched().idle_cycles();
    for (const auto& comp : system_.boot().compartments) {
      fp.reboots += comp.reboot_count;
    }
  }
  return fp;
}

}  // namespace cheriot::sim

// A learning Ethernet switch connecting simulated boards and the gateway.
// Pure frame plumbing with per-port latency: no protocol knowledge beyond
// the 802.3 header. Single-threaded — the Fleet only calls it at epoch
// barriers, never from board worker threads.
#ifndef SRC_SIM_FABRIC_H_
#define SRC_SIM_FABRIC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/base/types.h"
#include "src/flow/flow.h"

namespace cheriot {
namespace trace {
class TraceRecorder;
}  // namespace trace
}  // namespace cheriot

namespace cheriot::snap {
class Writer;
class Reader;
}  // namespace cheriot::snap

namespace cheriot::sim {

class Fabric {
 public:
  using Frame = std::vector<uint8_t>;
  using Mac = std::array<uint8_t, 6>;
  // Called once per delivered frame with its arrival time (transmit time
  // plus the destination port's latency) and its host-side provenance.
  using DeliverFn = std::function<void(Cycles due, Frame frame,
                                       flow::FlowId flow)>;

  // Attaches a port; returns its id. `latency` is the one-way delay of the
  // link behind this port (0 for the gateway, which sits "in" the switch).
  int AttachPort(Cycles latency, DeliverFn deliver);

  // Switches one frame transmitted on `src_port` at time `at`: learns the
  // source MAC, then delivers to the learned destination port, or floods to
  // every other port for broadcast/unknown destinations. `flow` rides
  // alongside the frame (never inside it); defaulted for hand-built frames.
  void Transmit(int src_port, Cycles at, const Frame& frame,
                flow::FlowId flow = {});

  // Smallest nonzero port latency (the conservative-lookahead bound for the
  // Fleet's epoch length); 0 if no such port exists yet.
  Cycles MinLinkLatency() const;

  uint64_t frames_switched() const { return frames_switched_; }
  uint64_t frames_flooded() const { return frames_flooded_; }
  size_t macs_learned() const { return mac_table_.size(); }

  // --- Communication groups -------------------------------------------------
  // Union-find over ports, merged on every actual delivery (unicast and each
  // leg of a flood): two ports share a group iff traffic has ever connected
  // them, directly or transitively. Ports that have never exchanged a frame
  // stay singleton. This is observational structure — the audit surface for
  // "who actually talks to whom" that the Fleet reports alongside its epoch
  // statistics. It is NOT used to decouple clocks: a broadcast can reach any
  // port at any barrier, so per-board parking on next-event bounds (which is
  // strictly finer-grained) is what the Fleet uses for correctness.

  // Canonical group representative for `port` (path-compressed).
  int GroupOf(int port) const;
  // Number of distinct groups among attached ports.
  size_t group_count() const;
  // Bumped once per group merge; lets callers cache group-derived state and
  // invalidate only when the partition actually changes.
  uint64_t group_generation() const { return group_generation_; }

  // Flight recorder for switched frames. The fabric has no clock of its own,
  // so events are stamped with the frame's transmit time; the Fleet only
  // calls Transmit at epoch barriers, so emission order is deterministic for
  // any host thread count.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  // Flow recorder hook (PR 9): every delivered leg is reported as a hop
  // (src port -> dst port, tx time -> due time). Pure observer, host handle
  // — never serialized; re-install after Restore.
  void set_flow(flow::FlowRecorder* recorder) { flow_ = recorder; }

  // Snapshot support (DESIGN.md §10). The port list itself (latencies,
  // deliver closures) is host wiring rebuilt by Fleet::Restore; what
  // serializes is the learned/observed state: the MAC table, the switch
  // counters and the communication partition. The raw union-find parent
  // array is path-compression-order-dependent, so the partition is written
  // in canonical form — Find(port) per port, which under the lower-id-wins
  // union rule is always the group's minimum member.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  struct Port {
    Cycles latency = 0;
    DeliverFn deliver;
  };

  void DeliverTo(int port, Cycles at, const Frame& frame, flow::FlowId flow);
  int Find(int port) const;
  void Union(int a, int b);

  std::vector<Port> ports_;
  std::map<Mac, int> mac_table_;
  trace::TraceRecorder* trace_ = nullptr;
  flow::FlowRecorder* flow_ = nullptr;
  uint64_t frames_switched_ = 0;
  uint64_t frames_flooded_ = 0;
  // Union-find parent per port; mutable for path compression in const reads.
  mutable std::vector<int> group_parent_;
  uint64_t group_generation_ = 0;
};

}  // namespace cheriot::sim

#endif  // SRC_SIM_FABRIC_H_

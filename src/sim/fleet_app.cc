#include "src/sim/fleet_app.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/net/world.h"
#include "src/runtime/compartment_ctx.h"
#include "src/sync/sync.h"

namespace cheriot::sim {

namespace {

constexpr Cycles kSecond = cost::kCoreHz;

EntryFn AppMain(std::shared_ptr<FleetAppState> state, FleetAppOptions opts) {
  return [state, opts](CompartmentCtx& ctx, const std::vector<Capability>&) {
    const Capability quota = ctx.SealedImport("app_quota");

    if (static_cast<int32_t>(
            ctx.Call("tcpip.wait_ready", {WordCap(~0u)}).word()) != 0) {
      state->failed = true;
      return StatusCap(Status::kCompartmentFail);
    }
    state->ready = true;
    state->ip = ctx.Call("tcpip.ifconfig", {}).word();

    auto connect = [&]() -> Capability {
      auto name_buf = ctx.AllocStack(32);
      const char kBroker[] = "mqtt.example.com";
      ctx.WriteBytes(name_buf.cap(), 0, kBroker, sizeof(kBroker) - 1);
      const Word ip =
          ctx.Call("dns.resolve",
                   {name_buf.cap(), WordCap(sizeof(kBroker) - 1)})
              .word();
      if (ip == 0) {
        return Capability();
      }
      // Fixed-width client id ("fl-NN") so every board's bring-up costs the
      // same number of cycles regardless of its index.
      auto id = ctx.AllocStack(8);
      char id_bytes[5] = {'f', 'l', '-',
                          static_cast<char>('0' + opts.board_index / 10),
                          static_cast<char>('0' + opts.board_index % 10)};
      ctx.WriteBytes(id.cap(), 0, id_bytes, 5);
      const Capability session = ctx.Call(
          "mqtt.connect", {quota, WordCap(ip), WordCap(net::kMqttTlsPort),
                           id.cap(), WordCap(5)});
      if (!session.tag()) {
        return session;
      }
      const std::string& sub = opts.subscribe_topic;
      auto topic = ctx.AllocStack(std::max<Word>(8, sub.size()));
      ctx.WriteBytes(topic.cap(), 0, sub.data(), sub.size());
      if (static_cast<int32_t>(
              ctx.Call("mqtt.subscribe",
                       {session, topic.cap(),
                        WordCap(static_cast<Word>(sub.size()))})
                  .word()) != 0) {
        return Capability();
      }
      return session;
    };

    Capability session = connect();
    if (!session.tag()) {
      state->failed = true;
      return StatusCap(Status::kCompartmentFail);
    }
    state->connected = true;

    // Announce ourselves to the broker.
    {
      auto topic = ctx.AllocStack(8);
      ctx.WriteBytes(topic.cap(), 0, "status", 6);
      auto payload = ctx.AllocStack(8);
      char body[2] = {static_cast<char>('0' + opts.board_index / 10),
                      static_cast<char>('0' + opts.board_index % 10)};
      ctx.WriteBytes(payload.cap(), 0, body, 2);
      if (static_cast<int32_t>(
              ctx.Call("mqtt.publish", {session, topic.cap(), WordCap(6),
                                        payload.cap(), WordCap(2)})
                  .word()) == 0) {
        ++state->publishes;
      }
    }

    for (int i = 0; i < opts.busy_publishes; ++i) {
      auto topic = ctx.AllocStack(8);
      ctx.WriteBytes(topic.cap(), 0, "status", 6);
      auto payload = ctx.AllocStack(8);
      char body[2] = {static_cast<char>('0' + (i / 10) % 10),
                      static_cast<char>('0' + i % 10)};
      ctx.WriteBytes(payload.cap(), 0, body, 2);
      if (static_cast<int32_t>(
              ctx.Call("mqtt.publish", {session, topic.cap(), WordCap(6),
                                        payload.cap(), WordCap(2)})
                  .word()) == 0) {
        ++state->publishes;
      }
    }

    if (opts.ping_ip != 0) {
      if (static_cast<int32_t>(
              ctx.Call("tcpip.ping",
                       {WordCap(opts.ping_ip), WordCap(5 * kSecond)})
                  .word()) == 0) {
        ++state->peer_ping_oks;
      }
    }

    // Steady state: count broker notifications; reconnect if the stack
    // micro-reboots under us.
    for (;;) {
      auto out = ctx.AllocStack(128);
      const Cycles poll_timeout =
          opts.poll_timeout != 0 ? opts.poll_timeout : kSecond / 2;
      const Capability r = ctx.Call(
          "mqtt.poll",
          {session, out.cap(), WordCap(128), WordCap(poll_timeout)});
      const auto n = static_cast<int32_t>(r.word());
      if (n > 0) {
        ++state->notifications;
        continue;
      }
      if (static_cast<Status>(n) == Status::kTimedOut) {
        continue;
      }
      state->connected = false;
      do {
        ctx.SleepCycles(kSecond / 4);
        session = connect();
      } while (!session.tag());
      state->connected = true;
    }
    return StatusCap(Status::kOk);
  };
}

}  // namespace

FirmwareImage BuildFleetAppImage(std::shared_ptr<FleetAppState> state,
                                 const FleetAppOptions& options) {
  ImageBuilder b("fleet-node");
  b.Compartment("app")
      .CodeSize(2 * 1024)
      .Globals(64)
      .AllocCap("app_quota", 24 * 1024)
      .Export("main", AppMain(std::move(state), options));
  net::UseNetwork(b, "app", options.net);
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  b.Thread("app", 3, 16 * 1024, 12, "app.main");
  return b.Build();
}

}  // namespace cheriot::sim

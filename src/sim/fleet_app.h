// The shared fleet firmware: the §5.3.3 MQTT case-study application reduced
// to its network skeleton (no JS VM) so tests and benches can boot many
// copies cheaply. Each board brings the stack up over DHCP, connects to the
// broker through TLS-lite, subscribes to "leds", publishes a status message
// and then polls for notifications; optionally it pings a peer board first.
#ifndef SRC_SIM_FLEET_APP_H_
#define SRC_SIM_FLEET_APP_H_

#include <memory>
#include <string>

#include "src/base/types.h"
#include "src/firmware/image.h"
#include "src/net/netstack.h"

namespace cheriot::sim {

// Host-visible progress of one board's app (shared_ptr captured by the
// firmware's entry function, read by the test/bench harness).
struct FleetAppState {
  bool ready = false;          // DHCP/ARP bring-up finished
  uint32_t ip = 0;             // the board's DHCP lease
  bool connected = false;      // MQTT session established + subscribed
  int publishes = 0;           // status messages sent to the broker
  int notifications = 0;       // broker publishes received
  int peer_ping_oks = 0;       // successful pings of the peer board
  bool failed = false;
};

struct FleetAppOptions {
  int board_index = 0;
  // If nonzero, ping this address once after connecting (e.g. the expected
  // lease of a peer board) and record the result in peer_ping_oks.
  uint32_t ping_ip = 0;
  // Extra back-to-back status publishes after the announce, before entering
  // the (mostly idle) poll loop. Benches use this to create a sustained busy
  // phase; each one counts in FleetAppState::publishes.
  int busy_publishes = 0;
  // Steady-state mqtt.poll timeout in cycles; 0 means the half-second
  // default. Telemetry-style benches stretch this to model devices that
  // sleep for seconds between reports.
  Cycles poll_timeout = 0;
  // Topic the board subscribes to after connecting. The default keeps the
  // historical bring-up byte-for-byte; flow tests point different boards at
  // different topics to exercise broker fan-out routing.
  std::string subscribe_topic = "leds";
  net::NetStackOptions net;
};

// Builds the firmware image; `state` outlives the Fleet run.
FirmwareImage BuildFleetAppImage(std::shared_ptr<FleetAppState> state,
                                 const FleetAppOptions& options = {});

}  // namespace cheriot::sim

#endif  // SRC_SIM_FLEET_APP_H_

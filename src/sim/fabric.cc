#include "src/sim/fabric.h"

#include <algorithm>
#include <cstring>

#include "src/snap/wire.h"
#include "src/trace/trace.h"

namespace cheriot::sim {

namespace {
constexpr Fabric::Mac kBroadcast = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
}  // namespace

int Fabric::AttachPort(Cycles latency, DeliverFn deliver) {
  ports_.push_back({latency, std::move(deliver)});
  const int id = static_cast<int>(ports_.size()) - 1;
  group_parent_.push_back(id);  // every port starts in its own group
  return id;
}

int Fabric::Find(int port) const {
  int root = port;
  while (group_parent_[static_cast<size_t>(root)] != root) {
    root = group_parent_[static_cast<size_t>(root)];
  }
  while (group_parent_[static_cast<size_t>(port)] != root) {
    int next = group_parent_[static_cast<size_t>(port)];
    group_parent_[static_cast<size_t>(port)] = root;
    port = next;
  }
  return root;
}

void Fabric::Union(int a, int b) {
  const int ra = Find(a);
  const int rb = Find(b);
  if (ra == rb) {
    return;
  }
  // Deterministic tie-break: the lower port id becomes the representative.
  if (ra < rb) {
    group_parent_[static_cast<size_t>(rb)] = ra;
  } else {
    group_parent_[static_cast<size_t>(ra)] = rb;
  }
  ++group_generation_;
}

int Fabric::GroupOf(int port) const { return Find(port); }

size_t Fabric::group_count() const {
  size_t groups = 0;
  for (int port = 0; port < static_cast<int>(ports_.size()); ++port) {
    if (Find(port) == port) {
      ++groups;
    }
  }
  return groups;
}

Cycles Fabric::MinLinkLatency() const {
  Cycles best = 0;
  for (const auto& port : ports_) {
    if (port.latency > 0 && (best == 0 || port.latency < best)) {
      best = port.latency;
    }
  }
  return best;
}

void Fabric::DeliverTo(int port, Cycles at, const Frame& frame,
                       flow::FlowId flow) {
  const Port& p = ports_[static_cast<size_t>(port)];
  if (p.deliver) {
    p.deliver(at + p.latency, frame, flow);
  }
}

void Fabric::Transmit(int src_port, Cycles at, const Frame& frame,
                      flow::FlowId flow) {
  if (frame.size() < 12) {
    return;
  }
  Mac dst;
  Mac src;
  std::memcpy(dst.data(), frame.data(), 6);
  std::memcpy(src.data(), frame.data() + 6, 6);
  mac_table_[src] = src_port;
  ++frames_switched_;

  if (dst != kBroadcast) {
    auto it = mac_table_.find(dst);
    if (it != mac_table_.end()) {
      if (it->second != src_port) {
        if (trace_ != nullptr) {
          trace_->OnFabricFrame(at, src_port, it->second, frame.size(),
                                flow.origin, flow.seq);
        }
        if (flow_ != nullptr) {
          const Cycles due =
              at + ports_[static_cast<size_t>(it->second)].latency;
          flow_->OnHop(flow, src_port, it->second, at, due, frame.size());
        }
        Union(src_port, it->second);
        DeliverTo(it->second, at, frame, flow);
      }
      return;
    }
  }
  // Broadcast or unlearned unicast: flood.
  ++frames_flooded_;
  if (trace_ != nullptr) {
    trace_->OnFabricFrame(at, src_port, -1, frame.size(), flow.origin,
                          flow.seq);
  }
  for (int port = 0; port < static_cast<int>(ports_.size()); ++port) {
    if (port != src_port) {
      if (flow_ != nullptr) {
        const Cycles due = at + ports_[static_cast<size_t>(port)].latency;
        flow_->OnHop(flow, src_port, port, at, due, frame.size());
      }
      Union(src_port, port);
      DeliverTo(port, at, frame, flow);
    }
  }
}

void Fabric::SerializeState(snap::Writer& w) const {
  w.U32(static_cast<uint32_t>(ports_.size()));
  w.U32(static_cast<uint32_t>(mac_table_.size()));
  for (const auto& [mac, port] : mac_table_) {
    for (uint8_t b : mac) {
      w.U8(b);
    }
    w.I32(port);
  }
  w.U64(frames_switched_);
  w.U64(frames_flooded_);
  w.U64(group_generation_);
  // Canonical partition: lower-id-wins unions make Find(port) the minimum
  // member of the port's group, independent of merge/compression order.
  for (int port = 0; port < static_cast<int>(ports_.size()); ++port) {
    w.I32(Find(port));
  }
}

void Fabric::RestoreState(snap::Reader& r) {
  const uint32_t port_count = r.U32();
  if (port_count != ports_.size()) {
    throw snap::SnapshotError("snapshot fabric port count mismatch");
  }
  mac_table_.clear();
  const uint32_t macs = r.U32();
  for (uint32_t i = 0; i < macs; ++i) {
    Mac mac;
    for (uint8_t& b : mac) {
      b = r.U8();
    }
    mac_table_[mac] = r.I32();
  }
  frames_switched_ = r.U64();
  frames_flooded_ = r.U64();
  group_generation_ = r.U64();
  for (uint32_t port = 0; port < port_count; ++port) {
    const int rep = r.I32();
    if (rep < 0 || static_cast<uint32_t>(rep) > port) {
      throw snap::SnapshotError("snapshot fabric partition malformed");
    }
    group_parent_[port] = rep;
  }
}

}  // namespace cheriot::sim

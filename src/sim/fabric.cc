#include "src/sim/fabric.h"

#include <algorithm>
#include <cstring>

#include "src/trace/trace.h"

namespace cheriot::sim {

namespace {
constexpr Fabric::Mac kBroadcast = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
}  // namespace

int Fabric::AttachPort(Cycles latency, DeliverFn deliver) {
  ports_.push_back({latency, std::move(deliver)});
  const int id = static_cast<int>(ports_.size()) - 1;
  group_parent_.push_back(id);  // every port starts in its own group
  return id;
}

int Fabric::Find(int port) const {
  int root = port;
  while (group_parent_[static_cast<size_t>(root)] != root) {
    root = group_parent_[static_cast<size_t>(root)];
  }
  while (group_parent_[static_cast<size_t>(port)] != root) {
    int next = group_parent_[static_cast<size_t>(port)];
    group_parent_[static_cast<size_t>(port)] = root;
    port = next;
  }
  return root;
}

void Fabric::Union(int a, int b) {
  const int ra = Find(a);
  const int rb = Find(b);
  if (ra == rb) {
    return;
  }
  // Deterministic tie-break: the lower port id becomes the representative.
  if (ra < rb) {
    group_parent_[static_cast<size_t>(rb)] = ra;
  } else {
    group_parent_[static_cast<size_t>(ra)] = rb;
  }
  ++group_generation_;
}

int Fabric::GroupOf(int port) const { return Find(port); }

size_t Fabric::group_count() const {
  size_t groups = 0;
  for (int port = 0; port < static_cast<int>(ports_.size()); ++port) {
    if (Find(port) == port) {
      ++groups;
    }
  }
  return groups;
}

Cycles Fabric::MinLinkLatency() const {
  Cycles best = 0;
  for (const auto& port : ports_) {
    if (port.latency > 0 && (best == 0 || port.latency < best)) {
      best = port.latency;
    }
  }
  return best;
}

void Fabric::DeliverTo(int port, Cycles at, const Frame& frame) {
  const Port& p = ports_[static_cast<size_t>(port)];
  if (p.deliver) {
    p.deliver(at + p.latency, frame);
  }
}

void Fabric::Transmit(int src_port, Cycles at, const Frame& frame) {
  if (frame.size() < 12) {
    return;
  }
  Mac dst;
  Mac src;
  std::memcpy(dst.data(), frame.data(), 6);
  std::memcpy(src.data(), frame.data() + 6, 6);
  mac_table_[src] = src_port;
  ++frames_switched_;

  if (dst != kBroadcast) {
    auto it = mac_table_.find(dst);
    if (it != mac_table_.end()) {
      if (it->second != src_port) {
        if (trace_ != nullptr) {
          trace_->OnFabricFrame(at, src_port, it->second, frame.size());
        }
        Union(src_port, it->second);
        DeliverTo(it->second, at, frame);
      }
      return;
    }
  }
  // Broadcast or unlearned unicast: flood.
  ++frames_flooded_;
  if (trace_ != nullptr) {
    trace_->OnFabricFrame(at, src_port, -1, frame.size());
  }
  for (int port = 0; port < static_cast<int>(ports_.size()); ++port) {
    if (port != src_port) {
      Union(src_port, port);
      DeliverTo(port, at, frame);
    }
  }
}

}  // namespace cheriot::sim

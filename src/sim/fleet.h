// Fleet: N Boards, one Gateway (ARP/DHCP/DNS/NTP/MQTT-broker services) and
// the Fabric connecting them, advanced in conservative-lookahead lockstep
// epochs on a host thread pool.
//
// Determinism contract: within an epoch, boards only execute — frames move
// exclusively at the barrier between epochs, in board-index order, with the
// gateway's inbox sorted by transmit time. Because the epoch length never
// exceeds the minimum link latency, a frame transmitted during epoch k is
// never due before epoch k ends, so exchanging at the barrier loses no
// timing precision: results are bit-identical for any host thread count.
// (A board's clock may overshoot an epoch boundary by the tail of its last
// guest operation; a frame due inside that overshoot is delivered when the
// board next advances — at worst one preemption granule late — and the
// overshoot itself is a deterministic function of the board's own history,
// so the ε does not vary across runs or thread counts.)
#ifndef SRC_SIM_FLEET_H_
#define SRC_SIM_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/world.h"
#include "src/sim/board.h"
#include "src/sim/fabric.h"

namespace cheriot::sim {

struct FleetOptions {
  // Host worker threads stepping boards within an epoch. 1 = run inline on
  // the calling thread. The result is identical for any value.
  int host_threads = 1;
  // Epoch length in simulated cycles; 0 = the minimum board link latency
  // (the largest sound value). Must not exceed the minimum link latency.
  Cycles epoch = 0;
  // One-way latency of each board's link to the switch.
  Cycles board_link_latency = 3'300;
  // Gateway service configuration (DNS table, loss injection, ...).
  net::WorldOptions world;
  MachineConfig machine;
  SystemOptions system;
  // Attach a flight recorder to every board (and a clockless one to the
  // fabric) before boot. Tracing never moves a guest cycle, so fingerprints
  // are unchanged whether this is on or off.
  bool trace = false;
  trace::TraceOptions trace_options;
  // Attach a crash-forensics recorder (src/health) to every board before
  // boot. Same zero-guest-cycle contract as trace.
  bool forensics = false;
  health::ForensicsOptions forensics_options;
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Adds a board running `image`; returns its index. The board's MAC is
  // MacForIndex(index). Call before Boot().
  int AddBoard(FirmwareImage image);

  // Boots every board (deterministic, single-threaded).
  void Boot();

  // Advances all boards by `cycles` in lockstep epochs.
  void Run(Cycles cycles);
  // Epoch-stepping until pred() holds (checked at each barrier) or
  // `max_cycles` elapse. Returns pred()'s final value.
  bool RunUntil(const std::function<bool()>& pred, Cycles max_cycles);

  // Gateway control surface, applied at the fleet's current time.
  void PublishMqtt(const std::string& topic, const net::Bytes& payload);
  void SendPing(net::Ipv4 dst, uint16_t id, uint16_t seq);

  Cycles Now() const { return now_; }
  size_t size() const { return boards_.size(); }
  Board& board(size_t i) { return *boards_[i]; }
  net::Gateway& gateway() { return gateway_; }
  Fabric& fabric() { return fabric_; }
  Cycles epoch_length() const { return epoch_; }
  uint64_t frames_exchanged() const { return frames_exchanged_; }

  // The fabric's recorder (frames only, stamped with TX cycles); null unless
  // FleetOptions::trace is set.
  trace::TraceRecorder* fabric_trace() { return fabric_trace_.get(); }
  // All live recorders — one per board plus the fabric's — in a fixed order
  // (board 0..N-1, then fabric) for merged export. Empty when tracing is off.
  std::vector<trace::TraceRecorder*> TraceRecorders();

  std::vector<Board::Fingerprint> Fingerprints();

 private:
  void RunEpoch(Cycles target);
  void StepBoardsParallel(Cycles target);
  void ExchangeFrames();
  void GatewayEmit(net::Bytes frame);
  void StartWorkers();
  void WorkerLoop();

  FleetOptions options_;
  Cycles epoch_ = 0;
  Cycles now_ = 0;
  std::vector<std::unique_ptr<Board>> boards_;
  std::vector<int> board_ports_;
  Fabric fabric_;
  std::unique_ptr<trace::TraceRecorder> fabric_trace_;
  net::Gateway gateway_;
  int gateway_port_ = -1;
  // Frames addressed to the gateway, collected during the barrier exchange
  // and processed in transmit-time order.
  std::vector<std::pair<Cycles, net::Bytes>> gateway_inbox_;
  Cycles gateway_emit_at_ = 0;  // TX timestamp for gateway replies
  uint64_t frames_exchanged_ = 0;
  bool booted_ = false;

  // Persistent worker pool (started lazily when host_threads > 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int workers_running_ = 0;
  Cycles step_target_ = 0;
  std::atomic<size_t> next_board_{0};
  bool shutdown_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace cheriot::sim

#endif  // SRC_SIM_FLEET_H_

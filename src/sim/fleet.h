// Fleet: N Boards, one Gateway (ARP/DHCP/DNS/NTP/MQTT-broker services) and
// the Fabric connecting them, advanced in conservative-lookahead lockstep
// epochs on a host thread pool.
//
// Determinism contract: within an epoch, boards only execute — frames move
// exclusively at the barrier between epochs, in board-index order, with the
// gateway's inbox sorted by transmit time. Because the epoch length never
// exceeds the minimum link latency, a frame transmitted during epoch k is
// never due before epoch k ends, so exchanging at the barrier loses no
// timing precision: results are bit-identical for any host thread count.
// (A board's clock may overshoot an epoch boundary by the tail of its last
// guest operation; a frame due inside that overshoot is delivered when the
// board next advances — at worst one preemption granule late — and the
// overshoot itself is a deterministic function of the board's own history,
// so the ε does not vary across runs or thread counts.)
//
// Three optimisations ride on top of that contract without changing a single
// observable cycle (DESIGN.md §6.1):
//   - Adaptive epoch coarsening: when every runnable board is provably idle
//     past the conservative barrier, the epoch extends straight to the
//     fleet-wide next interesting cycle — idle boards cannot transmit, so no
//     frame can become due inside the extension.
//   - Board parking: a board whose cached next interesting cycle lies beyond
//     the epoch target is not stepped at all; its clock is caught up lazily
//     (idle advance only) before Run/RunUntil return.
//   - Sharded exchange: each worker keeps a dirty-list of boards that staged
//     frames; the barrier drains only those, merged in board-index order,
//     instead of scanning every board every epoch.
#ifndef SRC_SIM_FLEET_H_
#define SRC_SIM_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/world.h"
#include "src/sim/board.h"
#include "src/sim/fabric.h"

namespace cheriot::sim {

struct FleetOptions {
  // Host worker threads stepping boards within an epoch. 1 = run inline on
  // the calling thread. The result is identical for any value.
  int host_threads = 1;
  // Epoch length in simulated cycles; 0 = the minimum board link latency
  // (the largest sound value). Must not exceed the minimum link latency —
  // validated at Fleet construction (against board_link_latency) and again
  // at Boot() (against the fabric's actual minimum).
  Cycles epoch = 0;
  // One-way latency of each board's link to the switch. Must be positive.
  Cycles board_link_latency = 3'300;
  // Idle fast-forward + adaptive epochs + board parking. Purely a host-time
  // optimisation: fingerprints are bit-identical on or off (pinned by
  // tests/fleet_test.cpp and CI's tsan-fleet job). Escape hatch for
  // bisecting determinism regressions; the CHERIOT_FLEET_FAST_FORWARD
  // environment variable ("0" = off, anything else = on) overrides this at
  // Fleet construction so CI can force both modes without code changes.
  bool fast_forward = true;
  // Gateway service configuration (DNS table, loss injection, ...).
  net::WorldOptions world;
  MachineConfig machine;
  SystemOptions system;
  // Attach a flight recorder to every board (and a clockless one to the
  // fabric) before boot. Tracing never moves a guest cycle, so fingerprints
  // are unchanged whether this is on or off.
  bool trace = false;
  trace::TraceOptions trace_options;
  // Attach a crash-forensics recorder (src/health) to every board before
  // boot. Same zero-guest-cycle contract as trace.
  bool forensics = false;
  health::ForensicsOptions forensics_options;
  // Attach the flow recorder (src/flow): cross-board causal message tracing,
  // latency histograms and the fleet metrics time-series (DESIGN.md §13).
  // Flow ids are assigned whether this is on or off — only *recording* is
  // gated — so fingerprints AND snapshot bytes are identical either way.
  bool flow = false;
  flow::FlowOptions flow_options;
  // Attach an authority-coverage recorder (src/cov) to every board before
  // boot. Same zero-guest-cycle contract as trace/forensics; the merged
  // export iterates boards in index order, so it is byte-identical for any
  // host worker count.
  bool cov = false;
  cov::CovOptions cov_options;
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Adds a board running `image`; returns its index. The board's MAC is
  // MacForIndex(index). Call before Boot().
  int AddBoard(FirmwareImage image);

  // Boots every board (deterministic, single-threaded).
  void Boot();

  // Advances all boards by `cycles` in lockstep epochs. Every board's clock
  // has reached now_ + cycles (modulo the per-board overshoot ε) on return.
  void Run(Cycles cycles);
  // Epoch-stepping until pred() holds (checked at each barrier) or
  // `max_cycles` elapse. Returns pred()'s final value. With fast-forward on,
  // barriers land at different cycles than with it off, so the fleet time at
  // which pred first holds may differ between the two modes; the state pred
  // observes at any given barrier does not.
  bool RunUntil(const std::function<bool()>& pred, Cycles max_cycles);

  // Gateway control surface, applied at the fleet's current time.
  void PublishMqtt(const std::string& topic, const net::Bytes& payload);
  void SendPing(net::Ipv4 dst, uint16_t id, uint16_t seq);

  Cycles Now() const { return now_; }
  size_t size() const { return boards_.size(); }
  Board& board(size_t i) { return *boards_[i]; }
  net::Gateway& gateway() { return gateway_; }
  Fabric& fabric() { return fabric_; }
  Cycles epoch_length() const { return epoch_; }
  bool fast_forward() const { return options_.fast_forward; }
  uint64_t frames_exchanged() const { return frames_exchanged_; }

  // --- Epoch statistics (honesty counters for benches and tests) -----------
  // Barriers crossed so far; with adaptive coarsening this is the real
  // synchronisation count, not elapsed_cycles / epoch_length.
  uint64_t barriers() const { return barriers_; }
  // Board-steps actually executed vs. parked (skipped because the board's
  // next interesting cycle lay beyond the epoch target).
  uint64_t boards_stepped() const { return boards_stepped_; }
  uint64_t boards_skipped() const { return boards_skipped_; }
  // Distinct communication groups observed by the fabric (union-find over
  // actual deliveries; see Fabric::GroupOf).
  size_t communication_groups() const { return fabric_.group_count(); }

  // The fabric's recorder (frames only, stamped with TX cycles); null unless
  // FleetOptions::trace is set.
  trace::TraceRecorder* fabric_trace() { return fabric_trace_.get(); }
  // The flow recorder; null unless FleetOptions::flow is set. Fed exclusively
  // at epoch barriers in board-index order, so its exports are byte-identical
  // for any host worker count.
  flow::FlowRecorder* flow_recorder() { return flow_.get(); }
  // All live recorders — one per board plus the fabric's — in a fixed order
  // (board 0..N-1, then fabric) for merged export. Empty when tracing is off.
  std::vector<trace::TraceRecorder*> TraceRecorders();
  // Per-board coverage recorders in board-index order; empty when coverage
  // is off. The order is the merged export's determinism argument.
  std::vector<const cov::CovRecorder*> CovRecorders();

  std::vector<Board::Fingerprint> Fingerprints();

  // --- Snapshot/restore (DESIGN.md §10) ------------------------------------
  //
  // Serializes the whole fleet: the effective options (EXCLUDING
  // host_threads — a pure host-performance knob, so snapshots taken at 1, 2
  // and 4 workers of the same state are byte-identical), the fabric's
  // learned state, every board's state sections as an embedded container,
  // and the fleet control-op log (coalesced Run advances plus gateway
  // control calls). Call between Run/RunUntil calls — the fleet is then at
  // an epoch barrier by construction.
  void Snapshot(std::vector<uint8_t>& out);

  // Firmware images are host-side artifacts (native closures) and cannot
  // cross a snapshot; the resolver supplies board i's image — the same one
  // the snapshot's fleet used. Restore rebuilds the fleet by replaying the
  // control-op log (bit-identical for any host_threads, which is why the
  // worker count is a free parameter here), then re-serializes everything
  // and byte-compares against the snapshot; a mismatch throws
  // snap::SnapshotError.
  // Like host_threads, `flow` is a host-observability knob: flow ids are
  // assigned unconditionally, so snapshots never record whether a recorder
  // was attached and any snapshot can be restored with recording on. The
  // replay then rebuilds the flow table / histograms / metrics exactly —
  // including spans that were in flight when the snapshot was taken.
  using ImageResolver = std::function<FirmwareImage(int board_index)>;
  static std::unique_ptr<Fleet> Restore(const uint8_t* data, size_t size,
                                        const ImageResolver& images,
                                        int host_threads = 1,
                                        bool flow = false,
                                        flow::FlowOptions flow_options = {});
  static std::unique_ptr<Fleet> Restore(const std::vector<uint8_t>& blob,
                                        const ImageResolver& images,
                                        int host_threads = 1, bool flow = false,
                                        flow::FlowOptions flow_options = {}) {
    return Restore(blob.data(), blob.size(), images, host_threads, flow,
                   flow_options);
  }

 private:
  // One entry in the whole-fleet control log. Everything a fleet does is a
  // deterministic function of its boot configuration plus this sequence, so
  // mid-run restore replays it instead of trying to byte-restore live host
  // fiber stacks.
  struct FleetOp {
    enum class Kind : uint8_t { kAdvance = 0, kMqtt = 1, kPing = 2 };
    Kind kind = Kind::kAdvance;
    Cycles to = 0;        // kAdvance: absolute fleet clock reached
    std::string topic;    // kMqtt
    net::Bytes payload;   // kMqtt
    net::Ipv4 dst = 0;    // kPing
    uint16_t id = 0;      // kPing
    uint16_t seq = 0;     // kPing
  };

  void RunEpoch(Cycles target);
  // Picks the next barrier: the conservative bound min(now + epoch, end),
  // extended to the fleet-wide minimum next interesting cycle when every
  // runnable board is provably idle past `now`.
  Cycles NextEpochTarget(Cycles end) const;
  // Fills step_list_ with the runnable boards whose cached next interesting
  // cycle is not beyond `target`; counts the rest as parked.
  void BuildStepList(Cycles target);
  void StepBoards(Cycles target);
  // Steps parked boards (idle advance only, by construction) up to now_ so
  // fingerprints and clocks match a non-fast-forward run bit for bit.
  void CatchUp();
  void ExchangeFrames();
  // Drains every board's staged flow observations (deliveries / NIC drops)
  // into the flow recorder, in board-index order. No-op when flow is off.
  void DrainFlowObservations();
  // Appends one metrics row per board when the fleet clock has crossed a
  // metrics_interval boundary since the last sample. No-op when flow is off.
  void SampleMetrics();
  void GatewayEmit(net::Bytes frame, flow::FlowId flow);
  void StartWorkers();
  void WorkerLoop(size_t worker_id);
  // Appends a coalesced kAdvance{now_} when the clock moved since the last
  // logged op; called before every control op and before Snapshot() so the
  // log always ends at the snapshot's barrier.
  void LogAdvance();
  void BuildSnapshotContainer(snap::Container& c);

  FleetOptions options_;
  Cycles epoch_ = 0;
  Cycles now_ = 0;
  std::vector<std::unique_ptr<Board>> boards_;
  std::vector<int> board_ports_;
  Fabric fabric_;
  std::unique_ptr<trace::TraceRecorder> fabric_trace_;
  net::Gateway gateway_;
  int gateway_port_ = -1;
  // Frames addressed to the gateway, collected during the barrier exchange
  // and processed in transmit-time order (with their provenance alongside).
  struct GatewayRx {
    Cycles at = 0;
    net::Bytes frame;
    flow::FlowId flow;
  };
  std::vector<GatewayRx> gateway_inbox_;
  Cycles gateway_emit_at_ = 0;  // TX timestamp for gateway replies
  std::unique_ptr<flow::FlowRecorder> flow_;
  Cycles flow_next_sample_ = 0;  // next metrics_interval boundary to sample
  uint64_t frames_exchanged_ = 0;
  bool booted_ = false;

  // Cached Board::NextInterestingCycle per board, refreshed after each step
  // and clamped down when the fabric injects a frame. Only read/written at
  // barriers or for boards owned by exactly one worker during an epoch.
  std::vector<Cycles> next_interesting_;
  // Boards to step this epoch (indices), rebuilt at each barrier.
  std::vector<size_t> step_list_;
  // Per-worker dirty lists: boards that staged TX frames during the epoch.
  // Slot 0 doubles as the inline (host_threads == 1) path's list. Merged and
  // sorted into tx_dirty_ at the barrier so the drain order is board-index
  // order regardless of which worker stepped what.
  std::vector<std::vector<size_t>> worker_dirty_;
  std::vector<size_t> tx_dirty_;
  uint64_t barriers_ = 0;
  uint64_t boards_stepped_ = 0;
  uint64_t boards_skipped_ = 0;

  // Whole-fleet control log (see FleetOp). Per-board replay logs are
  // disabled in AddBoard(); this is the single source of replay truth.
  std::vector<FleetOp> fleet_log_;
  Cycles logged_now_ = 0;

  // Persistent worker pool (started lazily when host_threads > 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int workers_running_ = 0;
  Cycles step_target_ = 0;
  std::atomic<size_t> next_step_{0};
  bool shutdown_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace cheriot::sim

#endif  // SRC_SIM_FLEET_H_

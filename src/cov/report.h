// Coverage export and least-privilege reporting (DESIGN.md §14).
//
// CoverageJson merges per-board recorders (board-index order, the fleet
// determinism argument) into the schema-versioned `cov_<image>.json`
// document. BuildExerciseIndex digests such a document into the dynamic
// exercise sets, and LeastPrivilegeJson diffs them against the §4 audit
// report — the static authority grants — into the least-privilege report:
// unused imports, MMIO ranges granted-but-untouched, never-called exports,
// quota headroom, each with a suggested policy/lint tightening. The same
// index drives lint rule CL010 (src/analysis/lint.cc).
#ifndef SRC_COV_REPORT_H_
#define SRC_COV_REPORT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/json/json.h"

namespace cheriot::cov {

class CovRecorder;

inline constexpr int kCoverageSchemaVersion = 1;
inline constexpr int kLeastPrivilegeSchemaVersion = 1;

// The merged, byte-stable coverage document:
//   { "schema_version": 1, "image": ..., "boards": [ <per-board body>... ] }
// Boards must be passed in board-index order.
json::Value CoverageJson(const std::string& image,
                         const std::vector<const CovRecorder*>& boards);

// Dynamic exercise sets digested from a coverage document, unioned across
// boards (same image on every board, so grant tables line up by identity).
struct MmioUse {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t granules_total = 0;
  uint64_t granules_touched = 0;  // popcount of the cross-board union
};

struct QuotaUse {
  uint64_t allocations = 0;
  uint64_t denials = 0;
  uint64_t limit = 0;
  uint64_t peak_live = 0;  // max over boards
};

struct ExerciseIndex {
  bool valid = false;  // parsed a recognisable coverage document
  std::string image;
  int boards = 0;
  // (caller compartment, "callee.function") cross-compartment edges.
  std::set<std::pair<std::string, std::string>> calls;
  // (caller compartment, "library.function") edges.
  std::set<std::pair<std::string, std::string>> libcalls;
  // "compartment.function" exports invoked at least once (any caller).
  std::set<std::string> called_exports;
  // (compartment, device, base, size) -> use.
  std::map<std::tuple<std::string, std::string, uint64_t, uint64_t>, MmioUse>
      mmio;
  // (compartment, alloc-capability name) -> use.
  std::map<std::pair<std::string, std::string>, QuotaUse> quotas;
  // (compartment, sealing type) exercised via seal or unseal.
  std::set<std::pair<std::string, std::string>> sealing;
  // Compartments that exercised at least one of their *own* grants (made a
  // call, touched MMIO, allocated, sealed/unsealed). Being called does not
  // make a compartment active — shipped audit fixtures with no-op entry
  // points stay inactive, which is what keeps CL010 free of false
  // positives: an unexercised grant is only *suspicious* (warning) when its
  // holder demonstrably ran and used other authority.
  std::set<std::string> active;
};

ExerciseIndex BuildExerciseIndex(const json::Value& coverage);

// Compartments and libraries whose APIs are imported wholesale by the
// bundled helpers (sync::Use*, net::UseNetwork, compat::UseMalloc,
// js::RegisterMiniVmLibrary): TCB services and the shipped middleware
// stacks. An uncalled import *targeting* one of these — or one of their own
// unexercised device windows — is linkage policy, not an authored grant, so
// the report and lint rule CL010 keep it at info severity. Used symmetrically
// by LeastPrivilegeJson and src/analysis/lint.cc.
const std::set<std::string>& ServiceOwners();

// Diffs static grants (audit report, src/audit) against dynamic exercise
// (coverage document). If the documents disagree on the image, the report
// carries a single stale-evidence info finding and no diff.
json::Value LeastPrivilegeJson(const json::Value& audit_report,
                               const json::Value& coverage);

// Human-readable rendering of a LeastPrivilegeJson document.
std::string LeastPrivilegeText(const json::Value& report);

}  // namespace cheriot::cov

#endif  // SRC_COV_REPORT_H_

#include "src/cov/coverage.h"

#include <algorithm>

#include "src/hw/machine.h"
#include "src/mem/memory.h"
#include "src/snap/wire.h"

namespace cheriot::cov {

namespace {

// Lowercase hex of a granule bitmap, 16 chars per 64-granule word, in word
// order. Byte-stable and trivially OR-able for the fleet-merged export.
std::string BitmapHex(const std::vector<uint64_t>& words) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(words.size() * 16);
  for (uint64_t w : words) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kHex[(w >> shift) & 0xf]);
    }
  }
  return out;
}

void MmioTrampoline(void* ctx, Address addr, Address size, bool is_store) {
  static_cast<CovRecorder*>(ctx)->OnMmioAccess(addr, size, is_store);
}

}  // namespace

size_t MmioGrantCov::granules_touched() const {
  size_t n = 0;
  for (uint64_t w : touched) {
    n += static_cast<size_t>(__builtin_popcountll(w));
  }
  return n;
}

CovRecorder::CovRecorder(CovOptions options) : options_(options) {}

void CovRecorder::SetCompartmentNames(std::vector<std::string> names) {
  compartment_names_ = std::move(names);
}
void CovRecorder::SetExportNames(std::vector<std::vector<std::string>> names) {
  export_names_ = std::move(names);
}
void CovRecorder::SetLibraryNames(std::vector<std::string> names) {
  library_names_ = std::move(names);
}
void CovRecorder::SetLibraryExportNames(
    std::vector<std::vector<std::string>> names) {
  library_export_names_ = std::move(names);
}
void CovRecorder::SetThreadNames(std::vector<std::string> names) {
  thread_names_ = std::move(names);
}

void CovRecorder::AddMmioGrant(int compartment, std::string device,
                               Address base, Address size, bool writeable) {
  MmioGrantCov g;
  g.compartment = compartment;
  g.device = std::move(device);
  g.base = base;
  g.size = size;
  g.writeable = writeable;
  if (options_.mmio_granules) {
    g.touched.assign((g.granules_total() + 63) / 64, 0);
  }
  mmio_.push_back(std::move(g));
}

void CovRecorder::AddQuotaGrant(uint32_t quota_id, int compartment,
                                std::string name, Word limit) {
  QuotaGrantCov g;
  g.quota_id = quota_id;
  g.compartment = compartment;
  g.name = std::move(name);
  g.limit = limit;
  quotas_.push_back(std::move(g));
}

void CovRecorder::AddSealingGrant(int compartment, std::string type_name,
                                  uint32_t type_id) {
  SealingGrantCov g;
  g.compartment = compartment;
  g.type_name = std::move(type_name);
  g.type_id = type_id;
  sealing_.push_back(std::move(g));
}

void CovRecorder::OnContextSwitch(int to_thread) {
  current_thread_ = to_thread;
}

void CovRecorder::OnCompartmentCall(int thread, int caller, int callee,
                                    int export_index, uint32_t depth) {
  if (thread >= 0) {
    if (static_cast<size_t>(thread) >= thread_stacks_.size()) {
      thread_stacks_.resize(static_cast<size_t>(thread) + 1);
    }
    thread_stacks_[static_cast<size_t>(thread)].push_back(callee);
  }
  const Cycles at = now();
  EdgeStats& e = calls_[{caller, callee, export_index}];
  if (e.count == 0) {
    e.first_cycle = at;
  }
  ++e.count;
  e.last_cycle = at;
  e.peak_depth = std::max(e.peak_depth, depth);
  uint32_t& peak = peak_depth_[{callee, export_index}];
  peak = std::max(peak, depth);
  ++calls_recorded_;
}

void CovRecorder::OnCompartmentReturn(int thread) {
  if (thread < 0 || static_cast<size_t>(thread) >= thread_stacks_.size()) {
    return;
  }
  auto& stack = thread_stacks_[static_cast<size_t>(thread)];
  if (!stack.empty()) {
    stack.pop_back();
  }
}

void CovRecorder::OnLibraryCall(int thread, int caller, int library,
                                int export_index) {
  (void)thread;
  const Cycles at = now();
  EdgeStats& e = libs_[{caller, library, export_index}];
  if (e.count == 0) {
    e.first_cycle = at;
  }
  ++e.count;
  e.last_cycle = at;
}

int CovRecorder::CurrentCompartment() const {
  if (current_thread_ < 0) {
    return current_thread_ == kCompartmentIdle ? kCompartmentIdle
                                               : kCompartmentBoot;
  }
  const size_t t = static_cast<size_t>(current_thread_);
  if (t < thread_stacks_.size() && !thread_stacks_[t].empty()) {
    return thread_stacks_[t].back();
  }
  return kCompartmentKernel;
}

void CovRecorder::OnMmioAccess(Address addr, Address size, bool is_store) {
  const int comp = CurrentCompartment();
  const Cycles at = now();
  for (MmioGrantCov& g : mmio_) {
    if (g.compartment != comp || addr < g.base || addr >= g.base + g.size) {
      continue;
    }
    if (g.reads + g.writes == 0) {
      g.first_cycle = at;
    }
    g.last_cycle = at;
    if (is_store) {
      ++g.writes;
    } else {
      ++g.reads;
    }
    if (!g.touched.empty()) {
      const Address end = std::min<Address>(addr + size, g.base + g.size);
      for (Address a = AlignDown(addr, kGranuleBytes); a < end;
           a += kGranuleBytes) {
        const size_t bit = (a - g.base) / kGranuleBytes;
        g.touched[bit / 64] |= 1ull << (bit % 64);
      }
    }
    return;
  }
  // No covering grant for the touching compartment: the access went through
  // a delegated capability or a pseudo context. Recorded so the report can
  // surface authority exercised outside the static grant table.
  ++unattributed_mmio_[{comp, AlignDown(addr, kGranuleBytes)}];
}

void CovRecorder::OnSealingUse(int compartment, uint32_t type_id,
                               bool unseal) {
  for (SealingGrantCov& g : sealing_) {
    if (g.compartment == compartment && g.type_id == type_id) {
      if (unseal) {
        ++g.unseals;
      } else {
        ++g.seals;
      }
      return;
    }
  }
}

void CovRecorder::OnHeapAlloc(uint32_t quota, Word bytes) {
  for (QuotaGrantCov& g : quotas_) {
    if (g.quota_id != quota) {
      continue;
    }
    ++g.allocations;
    g.live_bytes += bytes;
    g.peak_live_bytes = std::max(g.peak_live_bytes, g.live_bytes);
    return;
  }
}

void CovRecorder::OnHeapFree(uint32_t quota, Word bytes) {
  for (QuotaGrantCov& g : quotas_) {
    if (g.quota_id != quota) {
      continue;
    }
    ++g.frees;
    g.live_bytes -= std::min(g.live_bytes, bytes);
    return;
  }
}

void CovRecorder::OnQuotaDenied(uint32_t quota, Word bytes) {
  (void)bytes;
  for (QuotaGrantCov& g : quotas_) {
    if (g.quota_id == quota) {
      ++g.denials;
      return;
    }
  }
}

std::string CovRecorder::CompartmentName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < compartment_names_.size()) {
    return compartment_names_[static_cast<size_t>(id)];
  }
  switch (id) {
    case kCompartmentIdle: return "<idle>";
    case kCompartmentBoot: return "<boot>";
    case kCompartmentKernel: return "<kernel>";
    default: return "compartment" + std::to_string(id);
  }
}

std::string CovRecorder::ExportName(int compartment, int export_index) const {
  if (compartment >= 0 &&
      static_cast<size_t>(compartment) < export_names_.size()) {
    const auto& names = export_names_[static_cast<size_t>(compartment)];
    if (export_index >= 0 &&
        static_cast<size_t>(export_index) < names.size()) {
      return names[static_cast<size_t>(export_index)];
    }
  }
  return "export" + std::to_string(export_index);
}

std::string CovRecorder::LibraryName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < library_names_.size()) {
    return library_names_[static_cast<size_t>(id)];
  }
  return "library" + std::to_string(id);
}

std::string CovRecorder::LibraryExportName(int library,
                                           int export_index) const {
  if (library >= 0 &&
      static_cast<size_t>(library) < library_export_names_.size()) {
    const auto& names = library_export_names_[static_cast<size_t>(library)];
    if (export_index >= 0 &&
        static_cast<size_t>(export_index) < names.size()) {
      return names[static_cast<size_t>(export_index)];
    }
  }
  return "export" + std::to_string(export_index);
}

json::Value CovRecorder::Json() const {
  json::Object doc;
  doc["board"] = board_index_;
  doc["label"] = label_;
  doc["now"] = now();
  doc["calls_recorded"] = calls_recorded_;

  json::Array calls;
  for (const auto& [key, e] : calls_) {
    const auto [caller, callee, exp] = key;
    json::Object o;
    o["caller"] = caller == kCallerThreadEntry ? std::string("<entry>")
                                               : CompartmentName(caller);
    o["callee"] = CompartmentName(callee);
    o["export"] = ExportName(callee, exp);
    o["count"] = e.count;
    o["first_cycle"] = e.first_cycle;
    o["last_cycle"] = e.last_cycle;
    o["peak_depth"] = e.peak_depth;
    calls.push_back(std::move(o));
  }
  doc["calls"] = std::move(calls);

  json::Array libcalls;
  for (const auto& [key, e] : libs_) {
    const auto [caller, lib, exp] = key;
    json::Object o;
    o["caller"] = caller == kCallerThreadEntry ? std::string("<entry>")
                                               : CompartmentName(caller);
    o["library"] = LibraryName(lib);
    o["export"] = LibraryExportName(lib, exp);
    o["count"] = e.count;
    o["first_cycle"] = e.first_cycle;
    o["last_cycle"] = e.last_cycle;
    libcalls.push_back(std::move(o));
  }
  doc["library_calls"] = std::move(libcalls);

  json::Array exports;
  for (const auto& [key, depth] : peak_depth_) {
    json::Object o;
    o["compartment"] = CompartmentName(key.first);
    o["export"] = ExportName(key.first, key.second);
    o["peak_depth"] = depth;
    exports.push_back(std::move(o));
  }
  doc["export_peak_depth"] = std::move(exports);

  json::Array mmio;
  for (const MmioGrantCov& g : mmio_) {
    json::Object o;
    o["compartment"] = CompartmentName(g.compartment);
    o["device"] = g.device;
    o["base"] = g.base;
    o["size"] = g.size;
    o["writeable"] = g.writeable;
    o["reads"] = g.reads;
    o["writes"] = g.writes;
    o["first_cycle"] = g.first_cycle;
    o["last_cycle"] = g.last_cycle;
    o["granules_total"] = static_cast<uint64_t>(g.granules_total());
    o["granules_touched"] = static_cast<uint64_t>(g.granules_touched());
    if (!g.touched.empty()) {
      o["touched"] = BitmapHex(g.touched);
    }
    mmio.push_back(std::move(o));
  }
  doc["mmio"] = std::move(mmio);

  json::Array stray;
  for (const auto& [key, count] : unattributed_mmio_) {
    json::Object o;
    o["compartment"] = CompartmentName(key.first);
    o["granule"] = key.second;
    o["count"] = count;
    stray.push_back(std::move(o));
  }
  doc["unattributed_mmio"] = std::move(stray);

  json::Array sealing;
  for (const SealingGrantCov& g : sealing_) {
    json::Object o;
    o["compartment"] = CompartmentName(g.compartment);
    o["type"] = g.type_name;
    o["type_id"] = g.type_id;
    o["seals"] = g.seals;
    o["unseals"] = g.unseals;
    sealing.push_back(std::move(o));
  }
  doc["sealing"] = std::move(sealing);

  json::Array quotas;
  for (const QuotaGrantCov& g : quotas_) {
    json::Object o;
    o["quota_id"] = g.quota_id;
    o["compartment"] = CompartmentName(g.compartment);
    o["name"] = g.name;
    o["limit"] = g.limit;
    o["allocations"] = g.allocations;
    o["frees"] = g.frees;
    o["denials"] = g.denials;
    o["live_bytes"] = g.live_bytes;
    o["peak_live_bytes"] = g.peak_live_bytes;
    quotas.push_back(std::move(o));
  }
  doc["quotas"] = std::move(quotas);

  return json::Value(std::move(doc));
}

void CovRecorder::SerializeState(snap::Writer& w) const {
  w.U64(calls_recorded_);
  auto put_edges = [&w](const std::map<EdgeKey, EdgeStats>& edges) {
    w.U32(static_cast<uint32_t>(edges.size()));
    for (const auto& [key, e] : edges) {
      w.I32(std::get<0>(key));
      w.I32(std::get<1>(key));
      w.I32(std::get<2>(key));
      w.U64(e.count);
      w.U64(e.first_cycle);
      w.U64(e.last_cycle);
      w.U32(e.peak_depth);
    }
  };
  put_edges(calls_);
  put_edges(libs_);
  w.U32(static_cast<uint32_t>(peak_depth_.size()));
  for (const auto& [key, depth] : peak_depth_) {
    w.I32(key.first);
    w.I32(key.second);
    w.U32(depth);
  }
  w.U32(static_cast<uint32_t>(mmio_.size()));
  for (const MmioGrantCov& g : mmio_) {
    w.I32(g.compartment);
    w.Str(g.device);
    w.U32(g.base);
    w.U32(g.size);
    w.Bool(g.writeable);
    w.U64(g.reads);
    w.U64(g.writes);
    w.U64(g.first_cycle);
    w.U64(g.last_cycle);
    w.U32(static_cast<uint32_t>(g.touched.size()));
    for (uint64_t word : g.touched) {
      w.U64(word);
    }
  }
  w.U32(static_cast<uint32_t>(unattributed_mmio_.size()));
  for (const auto& [key, count] : unattributed_mmio_) {
    w.I32(key.first);
    w.U32(key.second);
    w.U64(count);
  }
  w.U32(static_cast<uint32_t>(sealing_.size()));
  for (const SealingGrantCov& g : sealing_) {
    w.I32(g.compartment);
    w.Str(g.type_name);
    w.U32(g.type_id);
    w.U64(g.seals);
    w.U64(g.unseals);
  }
  w.U32(static_cast<uint32_t>(quotas_.size()));
  for (const QuotaGrantCov& g : quotas_) {
    w.U32(g.quota_id);
    w.I32(g.compartment);
    w.Str(g.name);
    w.U32(g.limit);
    w.U64(g.allocations);
    w.U64(g.frees);
    w.U64(g.denials);
    w.U32(g.live_bytes);
    w.U32(g.peak_live_bytes);
  }
  w.I32(current_thread_);
  w.U32(static_cast<uint32_t>(thread_stacks_.size()));
  for (const auto& stack : thread_stacks_) {
    w.U32(static_cast<uint32_t>(stack.size()));
    for (int c : stack) {
      w.I32(c);
    }
  }
}

void Attach(Machine& machine, CovRecorder* recorder) {
  if (recorder != nullptr) {
    recorder->SetClock(&machine.clock());
    machine.memory().SetMmioObserver(&MmioTrampoline, recorder);
  } else {
    machine.memory().SetMmioObserver(nullptr, nullptr);
  }
  machine.set_cov(recorder);
}

}  // namespace cheriot::cov

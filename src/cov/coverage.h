// cheriot-cov authority coverage: a deterministic recorder of which static
// grants a firmware image actually *exercises* at runtime (DESIGN.md §14).
//
// The audit report (§4) and the authority graph built from it describe the
// authority firmware *could* use; this recorder measures the authority it
// *does* use, so the two can be diffed into a least-privilege report
// (src/cov/report.h): unused imports, never-called exports, MMIO ranges
// granted but untouched, quota headroom. Per board it records
//   - cross-compartment export invocations as (caller -> callee.export)
//     edges with call count, first/last guest cycle and the peak
//     trusted-stack depth reached through each export,
//   - library-call edges (caller -> library.export),
//   - the MMIO granules each compartment actually touched, per static grant,
//   - sealing keys exercised at the token seal/unseal sites,
//   - allocation-capability use (allocation count, live/peak-live bytes,
//     quota denials) per quota grant.
//
// Determinism contract (same as src/trace and src/health, pinned by
// tests/cov_test.cpp): the recorder only OBSERVES. It never ticks the clock,
// never touches simulated memory through costed paths (boot-time grant
// tables come from native loader state and RawLoadWord), and never consults
// host state, so enabling coverage cannot move a single guest cycle. Every
// capture site in the switcher/kernel/allocator/token service is a
// raw-pointer null check through Machine::cov(); the MMIO capture site is a
// dedicated raw-pointer observer on Memory's slow (device-window) path, so
// the SRAM fast path is untouched.
#ifndef SRC_COV_COVERAGE_H_
#define SRC_COV_COVERAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/base/clock.h"
#include "src/base/types.h"
#include "src/json/json.h"

namespace cheriot {
class Machine;
}  // namespace cheriot

namespace cheriot::snap {
class Writer;
}  // namespace cheriot::snap

namespace cheriot::cov {

// Pseudo-compartment ids for accesses made outside any guest thread's
// compartment context (same convention as the trace profiler's attribution
// buckets). Real compartments are >= 0.
inline constexpr int kCompartmentIdle = -1;
inline constexpr int kCompartmentBoot = -2;
inline constexpr int kCompartmentKernel = -3;
// Edge caller id for a thread's initial entry (the switcher's InitialCall
// has no calling compartment).
inline constexpr int kCallerThreadEntry = -1;

struct CovOptions {
  // Track per-granule MMIO touch bitmaps (8-byte granules, matching the
  // revocation granule). Off: only per-grant access counts are kept.
  bool mmio_granules = true;
};

// One dynamic (caller -> callee.export) edge.
struct EdgeStats {
  uint64_t count = 0;
  Cycles first_cycle = 0;
  Cycles last_cycle = 0;
  uint32_t peak_depth = 0;  // trusted-stack frames at the deepest call
};

// One static MMIO grant (import-table slot) with its dynamic touch record.
struct MmioGrantCov {
  int compartment = -1;
  std::string device;
  Address base = 0;
  Address size = 0;
  bool writeable = false;
  uint64_t reads = 0;
  uint64_t writes = 0;
  Cycles first_cycle = 0;
  Cycles last_cycle = 0;
  std::vector<uint64_t> touched;  // granule bitmap, (size+7)/8 bits

  size_t granules_total() const {
    return static_cast<size_t>((size + kGranuleBytes - 1) / kGranuleBytes);
  }
  size_t granules_touched() const;
};

// One static sealing-key grant with its dynamic exercise counts.
struct SealingGrantCov {
  int compartment = -1;
  std::string type_name;
  uint32_t type_id = 0;
  uint64_t seals = 0;
  uint64_t unseals = 0;
};

// One static allocation-capability grant with its dynamic quota use.
struct QuotaGrantCov {
  uint32_t quota_id = 0;
  int compartment = -1;
  std::string name;
  Word limit = 0;
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t denials = 0;
  Word live_bytes = 0;       // includes chunk headers (quota accounting unit)
  Word peak_live_bytes = 0;
};

class CovRecorder {
 public:
  explicit CovRecorder(CovOptions options = {});

  CovRecorder(const CovRecorder&) = delete;
  CovRecorder& operator=(const CovRecorder&) = delete;

  // --- Wiring (Attach() / System::Boot) ------------------------------------
  void SetClock(const CycleClock* clock) { clock_ = clock; }
  void SetLabel(std::string label) { label_ = std::move(label); }
  void SetBoardIndex(int index) { board_index_ = index; }
  void SetCompartmentNames(std::vector<std::string> names);
  void SetExportNames(std::vector<std::vector<std::string>> names);
  void SetLibraryNames(std::vector<std::string> names);
  void SetLibraryExportNames(std::vector<std::vector<std::string>> names);
  void SetThreadNames(std::vector<std::string> names);
  // Static grant tables, published by System::Boot from loader state (native
  // reads and RawLoadWord only — no guest cycles). Declaration order is the
  // import-table order, so exports and snapshots are byte-stable.
  void AddMmioGrant(int compartment, std::string device, Address base,
                    Address size, bool writeable);
  void AddQuotaGrant(uint32_t quota_id, int compartment, std::string name,
                     Word limit);
  void AddSealingGrant(int compartment, std::string type_name,
                       uint32_t type_id);

  // --- Choke-point hooks ---------------------------------------------------
  // Same sites as the trace recorder's; the recorder mirrors the compartment
  // call stack natively (reading the trusted stack would tick the clock).
  void OnContextSwitch(int to_thread);
  void OnCompartmentCall(int thread, int caller, int callee, int export_index,
                         uint32_t depth);
  void OnCompartmentReturn(int thread);
  void OnLibraryCall(int thread, int caller, int library, int export_index);
  // From Memory's device-window slow path; attributes to the mirrored
  // current compartment of the mirrored current thread.
  void OnMmioAccess(Address addr, Address size, bool is_store);
  void OnSealingUse(int compartment, uint32_t type_id, bool unseal);
  void OnHeapAlloc(uint32_t quota, Word bytes);
  void OnHeapFree(uint32_t quota, Word bytes);
  void OnQuotaDenied(uint32_t quota, Word bytes);

  // --- Read side (exporters, tests) ----------------------------------------
  using EdgeKey = std::tuple<int, int, int>;  // caller, callee, export
  const std::map<EdgeKey, EdgeStats>& call_edges() const { return calls_; }
  const std::map<EdgeKey, EdgeStats>& library_edges() const { return libs_; }
  // Peak trusted-stack depth per (callee, export), over all callers.
  const std::map<std::pair<int, int>, uint32_t>& peak_depth_by_export() const {
    return peak_depth_;
  }
  const std::vector<MmioGrantCov>& mmio_grants() const { return mmio_; }
  const std::vector<SealingGrantCov>& sealing_grants() const {
    return sealing_;
  }
  const std::vector<QuotaGrantCov>& quota_grants() const { return quotas_; }
  // MMIO touches with no covering grant for the touching compartment
  // (delegated-capability or pseudo-context accesses), keyed by
  // (compartment, granule base address).
  const std::map<std::pair<int, Address>, uint64_t>& unattributed_mmio() const {
    return unattributed_mmio_;
  }
  uint64_t calls_recorded() const { return calls_recorded_; }

  const std::string& label() const { return label_; }
  int board_index() const { return board_index_; }
  Cycles now() const { return clock_ ? clock_->now() : 0; }
  std::string CompartmentName(int id) const;
  std::string ExportName(int compartment, int export_index) const;
  std::string LibraryName(int id) const;
  std::string LibraryExportName(int library, int export_index) const;
  const CovOptions& options() const { return options_; }

  // Per-board coverage document body (one element of the exported "boards"
  // array, schema cov/report.h). Byte-stable: maps iterate in key order and
  // grant tables keep import-table order.
  json::Value Json() const;

  // Snapshot serialization (DESIGN.md §10): serialize-only, like the trace
  // and forensics recorders'. The replay restore path re-enables coverage
  // and re-executes the op log, so the verify step re-serializes and
  // byte-compares the regenerated state.
  void SerializeState(snap::Writer& w) const;

 private:
  int CurrentCompartment() const;

  CovOptions options_;
  const CycleClock* clock_ = nullptr;
  std::string label_;
  int board_index_ = 0;

  // Mirrored compartment call stacks (switcher choke points).
  std::vector<std::vector<int>> thread_stacks_;
  int current_thread_ = kCompartmentBoot;  // thread id, or pseudo id < 0

  std::map<EdgeKey, EdgeStats> calls_;
  std::map<EdgeKey, EdgeStats> libs_;
  std::map<std::pair<int, int>, uint32_t> peak_depth_;
  std::vector<MmioGrantCov> mmio_;
  std::vector<SealingGrantCov> sealing_;
  std::vector<QuotaGrantCov> quotas_;
  std::map<std::pair<int, Address>, uint64_t> unattributed_mmio_;
  uint64_t calls_recorded_ = 0;

  std::vector<std::string> compartment_names_;
  std::vector<std::vector<std::string>> export_names_;
  std::vector<std::string> library_names_;
  std::vector<std::vector<std::string>> library_export_names_;
  std::vector<std::string> thread_names_;
};

// Attaches a recorder to a machine: publishes it through Machine::cov() so
// the switcher, kernel, allocator and token capture sites see it, and
// installs the MMIO observer on the memory's device-window slow path.
// Null detaches both. Must be called before System::Boot() (which publishes
// the name and grant tables); the recorder must outlive the machine's last
// tick.
void Attach(Machine& machine, CovRecorder* recorder);

}  // namespace cheriot::cov

#endif  // SRC_COV_COVERAGE_H_

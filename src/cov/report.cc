#include "src/cov/report.h"

#include <algorithm>

#include "src/cov/coverage.h"

namespace cheriot::cov {

namespace {

bool IsPseudoCompartment(const std::string& name) {
  return !name.empty() && name.front() == '<';
}

// Parses a BitmapHex string (16 hex chars per 64-granule word) and ORs it
// into `out`, growing as needed.
void OrBitmapHex(const std::string& hex, std::vector<uint64_t>* out) {
  const size_t words = hex.size() / 16;
  if (out->size() < words) {
    out->resize(words, 0);
  }
  for (size_t w = 0; w < words; ++w) {
    uint64_t v = 0;
    for (size_t i = 0; i < 16; ++i) {
      const char c = hex[w * 16 + i];
      v = (v << 4) | static_cast<uint64_t>(
                         c >= 'a' ? c - 'a' + 10
                                  : c >= 'A' ? c - 'A' + 10 : c - '0');
    }
    (*out)[w] |= v;
  }
}

uint64_t Popcount(const std::vector<uint64_t>& words) {
  uint64_t n = 0;
  for (uint64_t w : words) {
    n += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return n;
}

json::Value Finding(const char* severity, const char* kind,
                    const std::string& compartment, const std::string& subject,
                    std::string message, std::string suggestion) {
  json::Object o;
  o["severity"] = severity;
  o["kind"] = kind;
  o["compartment"] = compartment;
  o["subject"] = subject;
  o["message"] = std::move(message);
  o["suggestion"] = std::move(suggestion);
  return json::Value(std::move(o));
}

int SeverityRank(const std::string& s) { return s == "warning" ? 0 : 1; }

}  // namespace

json::Value CoverageJson(const std::string& image,
                         const std::vector<const CovRecorder*>& boards) {
  json::Object doc;
  doc["schema_version"] = kCoverageSchemaVersion;
  doc["image"] = image;
  json::Array arr;
  for (const CovRecorder* r : boards) {
    arr.push_back(r->Json());
  }
  doc["boards"] = std::move(arr);
  return json::Value(std::move(doc));
}

const std::set<std::string>& ServiceOwners() {
  static const std::set<std::string> kOwners = {
      "alloc",  "sched",         "token",  "queue", "message_queue",
      "locks",  "semaphore",     "events", "tcpip", "tls",
      "dns",    "sntp",          "mqtt",   "minivm"};
  return kOwners;
}

ExerciseIndex BuildExerciseIndex(const json::Value& coverage) {
  ExerciseIndex idx;
  if (coverage.type() != json::Value::Type::kObject ||
      !coverage.Has("image") || !coverage.Has("boards")) {
    return idx;
  }
  idx.valid = true;
  idx.image = coverage["image"].AsString();
  std::map<std::tuple<std::string, std::string, uint64_t, uint64_t>,
           std::vector<uint64_t>>
      touched_union;
  for (const json::Value& board : coverage["boards"].AsArray()) {
    ++idx.boards;
    for (const json::Value& e : board["calls"].AsArray()) {
      const std::string& caller = e["caller"].AsString();
      const std::string target =
          e["callee"].AsString() + "." + e["export"].AsString();
      idx.called_exports.insert(target);
      if (!IsPseudoCompartment(caller)) {
        idx.calls.insert({caller, target});
        idx.active.insert(caller);
      }
    }
    for (const json::Value& e : board["library_calls"].AsArray()) {
      const std::string& caller = e["caller"].AsString();
      if (!IsPseudoCompartment(caller)) {
        idx.libcalls.insert(
            {caller, e["library"].AsString() + "." + e["export"].AsString()});
        idx.active.insert(caller);
      }
    }
    for (const json::Value& e : board["mmio"].AsArray()) {
      const auto key = std::make_tuple(
          e["compartment"].AsString(), e["device"].AsString(),
          static_cast<uint64_t>(e["base"].AsInt()),
          static_cast<uint64_t>(e["size"].AsInt()));
      MmioUse& use = idx.mmio[key];
      use.reads += static_cast<uint64_t>(e["reads"].AsInt());
      use.writes += static_cast<uint64_t>(e["writes"].AsInt());
      use.granules_total = static_cast<uint64_t>(e["granules_total"].AsInt());
      if (e.Has("touched")) {
        OrBitmapHex(e["touched"].AsString(), &touched_union[key]);
      } else {
        // Granule tracking off: any access marks the grant fully exercised
        // for diff purposes.
        use.granules_touched =
            use.reads + use.writes > 0 ? use.granules_total : 0;
      }
      if (use.reads + use.writes > 0) {
        idx.active.insert(std::get<0>(key));
      }
    }
    for (const json::Value& e : board["quotas"].AsArray()) {
      QuotaUse& use = idx.quotas[{e["compartment"].AsString(),
                                  e["name"].AsString()}];
      use.allocations += static_cast<uint64_t>(e["allocations"].AsInt());
      use.denials += static_cast<uint64_t>(e["denials"].AsInt());
      use.limit = static_cast<uint64_t>(e["limit"].AsInt());
      use.peak_live =
          std::max(use.peak_live,
                   static_cast<uint64_t>(e["peak_live_bytes"].AsInt()));
      if (use.allocations > 0) {
        idx.active.insert(e["compartment"].AsString());
      }
    }
    for (const json::Value& e : board["sealing"].AsArray()) {
      if (e["seals"].AsInt() + e["unseals"].AsInt() > 0) {
        idx.sealing.insert(
            {e["compartment"].AsString(), e["type"].AsString()});
        idx.active.insert(e["compartment"].AsString());
      }
    }
  }
  for (auto& [key, bits] : touched_union) {
    idx.mmio[key].granules_touched = Popcount(bits);
  }
  return idx;
}

json::Value LeastPrivilegeJson(const json::Value& audit_report,
                               const json::Value& coverage) {
  const std::string image = audit_report["firmware"].AsString();
  const ExerciseIndex idx = BuildExerciseIndex(coverage);

  json::Object doc;
  doc["schema_version"] = kLeastPrivilegeSchemaVersion;
  doc["image"] = image;
  json::Object evidence;
  evidence["image"] = idx.image;
  evidence["boards"] = idx.boards;
  const bool matches = idx.valid && idx.image == image;
  evidence["matches"] = matches;
  doc["evidence"] = json::Value(std::move(evidence));

  json::Array findings;
  uint64_t imports_total = 0, imports_exercised = 0;
  uint64_t exports_total = 0, exports_called = 0;
  uint64_t granules_granted = 0, granules_touched = 0;

  if (!matches) {
    findings.push_back(Finding(
        "info", "stale_evidence", "", idx.image,
        "coverage evidence is for image \"" + idx.image +
            "\", not \"" + image + "\"; no diff performed",
        "re-run cheriot_cov on this image"));
  } else {
    // The dead-export exemption matches the CL00x linter: RTOS service
    // compartments export their API into every image by construction.
    const std::set<std::string> exempt = {"alloc", "sched", "token"};
    const std::set<std::string>& service = ServiceOwners();
    for (const auto& [comp, c] : audit_report["compartments"].AsObject()) {
      const bool active = idx.active.count(comp) > 0;
      // An unexercised grant is a *warning* only under differential
      // evidence: the holder ran and used other authority, yet never this
      // grant. Inactive holders (no-op fixtures, cold paths) stay info, as
      // do service-owner holders (their device windows are stack linkage,
      // not authored grants) and imports *targeting* a service owner (the
      // Use* helpers import the whole API wholesale by design).
      const char* unused_sev = active ? "warning" : "info";
      const char* holder_sev = service.count(comp) ? "info" : unused_sev;
      for (const json::Value& imp : c["imports"].AsArray()) {
        const std::string& kind = imp["kind"].AsString();
        if (kind == "call") {
          ++imports_total;
          const std::string& callee = imp["compartment_name"].AsString();
          const std::string subject =
              callee + "." + imp["function"].AsString();
          if (idx.calls.count({comp, subject})) {
            ++imports_exercised;
          } else {
            findings.push_back(Finding(
                service.count(callee) ? "info" : unused_sev,
                "unused_call_import", comp, subject,
                "import of " + subject + " was never called",
                "drop ImportCompartment(\"" + subject + "\")"));
          }
        } else if (kind == "library") {
          ++imports_total;
          const std::string& library = imp["library"].AsString();
          const std::string subject =
              library + "." + imp["function"].AsString();
          if (idx.libcalls.count({comp, subject})) {
            ++imports_exercised;
          } else {
            findings.push_back(Finding(
                service.count(library) ? "info" : unused_sev,
                "unused_library_import", comp, subject,
                "import of library " + subject + " was never called",
                "drop ImportLibrary(\"" + subject + "\")"));
          }
        } else if (kind == "mmio") {
          ++imports_total;
          const std::string& device = imp["device"].AsString();
          const auto key = std::make_tuple(
              comp, device, static_cast<uint64_t>(imp["start"].AsInt()),
              static_cast<uint64_t>(imp["length"].AsInt()));
          auto it = idx.mmio.find(key);
          const MmioUse use = it != idx.mmio.end() ? it->second : MmioUse{};
          const uint64_t total =
              use.granules_total != 0
                  ? use.granules_total
                  : (static_cast<uint64_t>(imp["length"].AsInt()) + 7) / 8;
          granules_granted += total;
          granules_touched += use.granules_touched;
          if (use.reads + use.writes == 0) {
            findings.push_back(Finding(
                holder_sev, "unused_mmio", comp, device,
                "mmio grant \"" + device + "\" (" +
                    std::to_string(imp["length"].AsInt()) +
                    " bytes) was never touched",
                "drop ImportMmio(\"" + device + "\", ...)"));
          } else {
            ++imports_exercised;
            if (use.granules_touched < total) {
              findings.push_back(Finding(
                  "info", "mmio_partial", comp, device,
                  "mmio grant \"" + device + "\" touched " +
                      std::to_string(use.granules_touched) + " of " +
                      std::to_string(total) + " granules",
                  "narrow the window to the registers actually used"));
            }
          }
        } else if (kind == "allocation_capability") {
          ++imports_total;
          const std::string& name = imp["name"].AsString();
          auto it = idx.quotas.find({comp, name});
          const QuotaUse use =
              it != idx.quotas.end() ? it->second : QuotaUse{};
          if (use.allocations + use.denials == 0) {
            // Alloc-capability and sealing-key findings never warn: a quota
            // is standing headroom, not a reachable attack surface the way a
            // dead call or device window is.
            findings.push_back(Finding(
                "info", "unused_alloc_cap", comp, name,
                "allocation capability \"" + name + "\" was never used",
                "drop AllocCap(\"" + name + "\")"));
          } else {
            ++imports_exercised;
            if (use.peak_live * 2 <= use.limit && use.denials == 0) {
              findings.push_back(Finding(
                  "info", "quota_headroom", comp, name,
                  "quota \"" + name + "\": peak live " +
                      std::to_string(use.peak_live) + " of " +
                      std::to_string(use.limit) + " bytes granted",
                  "reduce the quota toward the observed peak"));
            }
          }
        } else if (kind == "sealing_key") {
          ++imports_total;
          const std::string& type = imp["sealing_type"].AsString();
          if (idx.sealing.count({comp, type})) {
            ++imports_exercised;
          } else {
            findings.push_back(Finding(
                "info", "unused_sealing_key", comp, type,
                "sealing key for type \"" + type + "\" was never exercised",
                "drop SealingKey(\"" + type + "\")"));
          }
        }
        // "sealed_object": static data, nothing dynamic to diff.
      }
      for (const json::Value& exp : c["exports"].AsArray()) {
        ++exports_total;
        const std::string subject = comp + "." + exp["function"].AsString();
        if (idx.called_exports.count(subject)) {
          ++exports_called;
        } else if (!exempt.count(comp)) {
          findings.push_back(Finding(
              "info", "never_called_export", comp, subject,
              "export " + subject + " was never invoked",
              "drop the export or its callers' imports"));
        }
      }
    }
    // Authority exercised outside the static grant table (delegated
    // capabilities): surfaced so a reviewer sees third-party flows.
    for (const json::Value& board : coverage["boards"].AsArray()) {
      for (const json::Value& e : board["unattributed_mmio"].AsArray()) {
        const std::string& comp = e["compartment"].AsString();
        if (IsPseudoCompartment(comp)) {
          continue;
        }
        findings.push_back(Finding(
            "info", "unattributed_mmio", comp,
            std::to_string(e["granule"].AsInt()),
            "compartment touched mmio granule " +
                std::to_string(e["granule"].AsInt()) +
                " outside its own grants (delegated capability)",
            "audit the delegation path"));
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const json::Value& a, const json::Value& b) {
              const auto ka = std::make_tuple(
                  SeverityRank(a["severity"].AsString()),
                  a["compartment"].AsString(), a["kind"].AsString(),
                  a["subject"].AsString());
              const auto kb = std::make_tuple(
                  SeverityRank(b["severity"].AsString()),
                  b["compartment"].AsString(), b["kind"].AsString(),
                  b["subject"].AsString());
              return ka < kb;
            });
  // Cross-board duplicates (same finding from every board's unattributed
  // list) collapse after the sort.
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const json::Value& a, const json::Value& b) {
                               return a.Dump(-1) == b.Dump(-1);
                             }),
                 findings.end());

  uint64_t warnings = 0, infos = 0;
  for (const json::Value& f : findings) {
    (f["severity"].AsString() == "warning" ? warnings : infos) += 1;
  }
  json::Object summary;
  summary["imports_total"] = imports_total;
  summary["imports_exercised"] = imports_exercised;
  summary["exports_total"] = exports_total;
  summary["exports_called"] = exports_called;
  summary["mmio_granules_granted"] = granules_granted;
  summary["mmio_granules_touched"] = granules_touched;
  summary["warnings"] = warnings;
  summary["infos"] = infos;
  doc["summary"] = json::Value(std::move(summary));
  doc["findings"] = std::move(findings);
  return json::Value(std::move(doc));
}

std::string LeastPrivilegeText(const json::Value& report) {
  std::string out;
  out += "least-privilege report for " + report["image"].AsString();
  const json::Value& ev = report["evidence"];
  out += " (evidence: " + std::to_string(ev["boards"].AsInt()) + " board" +
         (ev["boards"].AsInt() == 1 ? "" : "s") +
         (ev["matches"].AsBool() ? "" : ", STALE") + ")\n";
  const json::Value& s = report["summary"];
  out += "  imports exercised: " +
         std::to_string(s["imports_exercised"].AsInt()) + "/" +
         std::to_string(s["imports_total"].AsInt()) +
         " · exports called: " + std::to_string(s["exports_called"].AsInt()) +
         "/" + std::to_string(s["exports_total"].AsInt()) +
         " · mmio granules touched: " +
         std::to_string(s["mmio_granules_touched"].AsInt()) + "/" +
         std::to_string(s["mmio_granules_granted"].AsInt()) + "\n";
  for (const json::Value& f : report["findings"].AsArray()) {
    out += "  [" + f["severity"].AsString() + "] ";
    if (!f["compartment"].AsString().empty()) {
      out += f["compartment"].AsString() + ": ";
    }
    out += f["message"].AsString();
    out += " — " + f["suggestion"].AsString() + "\n";
  }
  out += "  " + std::to_string(s["warnings"].AsInt()) + " warning(s), " +
         std::to_string(s["infos"].AsInt()) + " info finding(s)\n";
  return out;
}

}  // namespace cheriot::cov

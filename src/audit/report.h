// Firmware audit report (§4): the linker-style JSON document describing the
// full static structure of the image — every compartment, its exports, and
// crucially everything its import table authorizes (compartment calls,
// library sentries, MMIO grants, allocation capabilities, sealed objects,
// sealing keys). Integrators check this against policy without needing the
// source of every component.
#ifndef SRC_AUDIT_REPORT_H_
#define SRC_AUDIT_REPORT_H_

#include <string>

#include "src/json/json.h"
#include "src/loader/loader.h"

namespace cheriot::audit {

// Report schema version. v2: adds this field, the per-thread "entry" export,
// and deterministic sorting of every array field (exports, imports, threads)
// so reports are byte-stable across runs — a prerequisite for signing
// workflows and for diffing lint baselines.
inline constexpr int kReportSchemaVersion = 2;

// Builds the machine-readable report from the booted (or just loaded) image.
json::Value BuildReport(const BootInfo& boot);

// Convenience: serialized with stable key order (signable).
std::string ReportJson(const BootInfo& boot);

}  // namespace cheriot::audit

#endif  // SRC_AUDIT_REPORT_H_

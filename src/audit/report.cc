#include "src/audit/report.h"

#include <algorithm>

namespace cheriot::audit {

namespace {

// Array fields are sorted by their compact serialization so the report is
// byte-stable across runs and loader refactors: signed reports and lint
// baselines diff cleanly. (Objects are std::maps and already ordered.)
json::Value SortedArray(json::Array arr) {
  std::sort(arr.begin(), arr.end(),
            [](const json::Value& a, const json::Value& b) {
              return a.Dump(-1) < b.Dump(-1);
            });
  return json::Value(std::move(arr));
}

const char* PostureName(InterruptPosture p) {
  switch (p) {
    case InterruptPosture::kInherited: return "inherited";
    case InterruptPosture::kEnabled: return "enabled";
    case InterruptPosture::kDisabled: return "disabled";
  }
  return "?";
}

json::Value ExportEntry(const ExportDef& e) {
  json::Object o;
  o["function"] = e.name;
  o["minimum_stack"] = static_cast<int64_t>(e.min_stack_bytes);
  o["argument_registers"] = static_cast<int64_t>(e.arg_registers);
  o["interrupt_posture"] = PostureName(e.posture);
  return json::Value(std::move(o));
}

json::Value ImportEntry(const BootInfo& boot, const CompartmentRuntime& rt,
                        const ImportBinding& b) {
  json::Object o;
  switch (b.kind) {
    case ImportBinding::Kind::kCompartmentCall: {
      o["kind"] = "call";
      const auto dot = b.qualified_name.find('.');
      o["compartment_name"] = b.qualified_name.substr(0, dot);
      o["function"] = b.qualified_name.substr(dot + 1);
      break;
    }
    case ImportBinding::Kind::kLibraryCall: {
      o["kind"] = "library";
      const auto dot = b.qualified_name.find('.');
      o["library"] = b.qualified_name.substr(0, dot);
      o["function"] = b.qualified_name.substr(dot + 1);
      break;
    }
    case ImportBinding::Kind::kMmio: {
      o["kind"] = "mmio";
      o["device"] = b.qualified_name;
      o["start"] = static_cast<int64_t>(b.cap.base());
      o["length"] = static_cast<int64_t>(b.cap.length());
      o["writeable"] = b.cap.permissions().Has(Permission::kStore);
      break;
    }
    case ImportBinding::Kind::kSealedObject: {
      // Distinguish allocation capabilities from user sealed objects.
      if (b.cap.otype() == OType::kAllocatorQuota) {
        o["kind"] = "allocation_capability";
        o["name"] = b.qualified_name;
        for (const auto& ac : rt.def->alloc_caps) {
          if (ac.name == b.qualified_name) {
            o["quota"] = static_cast<int64_t>(ac.quota_bytes);
          }
        }
      } else {
        o["kind"] = "sealed_object";
        o["name"] = b.qualified_name;
        for (const auto& so : rt.def->sealed_objects) {
          if (so.name == b.qualified_name) {
            o["sealing_type"] = so.sealing_type;
            o["payload_bytes"] = static_cast<int64_t>(so.payload.size());
          }
        }
      }
      break;
    }
    case ImportBinding::Kind::kSealingKey: {
      o["kind"] = "sealing_key";
      o["sealing_type"] = b.qualified_name;
      o["type_id"] =
          static_cast<int64_t>(boot.virtual_type_ids.count(b.qualified_name)
                                   ? boot.virtual_type_ids.at(b.qualified_name)
                                   : 0);
      break;
    }
  }
  return json::Value(std::move(o));
}

}  // namespace

json::Value BuildReport(const BootInfo& boot) {
  json::Object root;
  root["schema_version"] = kReportSchemaVersion;
  root["firmware"] = boot.image.name;

  json::Object heap;
  heap["start"] = static_cast<int64_t>(boot.heap_base);
  heap["size"] = static_cast<int64_t>(boot.heap_size);
  root["heap"] = json::Value(std::move(heap));

  json::Object compartments;
  for (const auto& rt : boot.compartments) {
    json::Object c;
    c["code_size"] = static_cast<int64_t>(rt.code_size);
    c["globals_size"] = static_cast<int64_t>(rt.globals_size);
    json::Array exports;
    for (const auto& e : rt.def->exports) {
      exports.push_back(ExportEntry(e));
    }
    c["exports"] = SortedArray(std::move(exports));
    json::Array imports;
    for (const auto& b : rt.imports) {
      imports.push_back(ImportEntry(boot, rt, b));
    }
    c["imports"] = SortedArray(std::move(imports));
    if (rt.def->error_handler) {
      c["error_handler"] = true;
    }
    compartments[rt.name] = json::Value(std::move(c));
  }
  root["compartments"] = json::Value(std::move(compartments));

  json::Object libraries;
  for (const auto& lib : boot.libraries) {
    json::Object l;
    l["code_size"] = static_cast<int64_t>(lib.code_size);
    json::Array exports;
    for (const auto& e : lib.def->exports) {
      exports.push_back(ExportEntry(e));
    }
    l["exports"] = SortedArray(std::move(exports));
    libraries[lib.name] = json::Value(std::move(l));
  }
  root["libraries"] = json::Value(std::move(libraries));

  json::Array threads;
  for (const auto& t : boot.threads) {
    json::Object to;
    to["name"] = t.name;
    to["priority"] = static_cast<int64_t>(t.priority);
    to["stack_size"] = static_cast<int64_t>(t.stack_size);
    to["trusted_stack_frames"] = static_cast<int64_t>(t.max_frames);
    const auto& entry_comp = boot.compartments[t.entry_compartment];
    to["entry_compartment"] = entry_comp.name;
    // The exact export the thread enters (schema v2): the linter's
    // dead-export pass needs it, flat queries keep using entry_compartment.
    to["entry"] =
        entry_comp.name + "." + entry_comp.def->exports[t.entry_export].name;
    threads.push_back(json::Value(std::move(to)));
  }
  root["threads"] = SortedArray(std::move(threads));

  json::Object types;
  for (const auto& [name, id] : boot.virtual_type_ids) {
    types[name] = static_cast<int64_t>(id);
  }
  root["sealing_types"] = json::Value(std::move(types));

  return json::Value(std::move(root));
}

std::string ReportJson(const BootInfo& boot) { return BuildReport(boot).Dump(2); }

}  // namespace cheriot::audit

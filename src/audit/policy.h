// Declarative policy checking over the firmware audit report (§4, Fig. 4).
//
// Plays the role of the Rego-based cheriot-audit tool: policies are boolean
// expressions over the JSON report, e.g.
//
//   count(compartments_calling("NetAPI.network_socket_connect_tcp")) == 1
//   allocation_quota_sum() <= heap_size()
//   !contains(importers_of_mmio("ethernet"), "js_app")
//
// A policy document is a sequence of lines; blank lines and '#' comments are
// ignored; every remaining line must evaluate to true.
#ifndef SRC_AUDIT_POLICY_H_
#define SRC_AUDIT_POLICY_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/json/json.h"

namespace cheriot::audit {

// Expression values: integers, booleans, strings, string lists.
using PolicyValue =
    std::variant<int64_t, bool, std::string, std::vector<std::string>>;

struct PolicyViolation {
  int line = 0;
  std::string expression;
  std::string reason;  // "evaluated to false" or a parse/eval error
};

class PolicyEngine {
 public:
  // The engine audits the *report document*, not live kernel state: the
  // same JSON an external integrator would receive.
  explicit PolicyEngine(json::Value report) : report_(std::move(report)) {}

  // Evaluates one expression. Throws std::runtime_error on syntax errors or
  // type mismatches.
  PolicyValue Eval(const std::string& expression) const;
  // Evaluates an expression that must produce a boolean.
  bool CheckExpression(const std::string& expression) const;

  // Checks a whole policy document; returns the violations (empty = pass).
  std::vector<PolicyViolation> CheckDocument(const std::string& policy) const;

  // --- Report query functions (exposed for direct C++ use) ---
  std::vector<std::string> CompartmentsCalling(const std::string& target) const;
  std::vector<std::string> ImportersOfMmio(const std::string& device) const;
  std::vector<std::string> ImportersOfLibrary(const std::string& target) const;
  std::vector<std::string> HoldersOfSealedObject(const std::string& name) const;
  std::vector<std::string> OwnersOfSealingType(const std::string& type) const;
  std::vector<std::string> ExportsOf(const std::string& compartment) const;
  std::vector<std::string> Compartments() const;
  std::vector<std::string> ThreadsEntering(const std::string& compartment) const;
  int64_t AllocationQuotaSum() const;
  int64_t HeapSize() const;
  int64_t CodeSize(const std::string& compartment) const;
  bool CompartmentExists(const std::string& name) const;
  bool Calls(const std::string& caller, const std::string& target) const;
  bool HasErrorHandler(const std::string& compartment) const;

  const json::Value& report() const { return report_; }

 private:
  json::Value report_;
};

}  // namespace cheriot::audit

#endif  // SRC_AUDIT_POLICY_H_

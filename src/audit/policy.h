// Declarative policy checking over the firmware audit report (§4, Fig. 4).
//
// Plays the role of the Rego-based cheriot-audit tool: policies are boolean
// expressions over the JSON report, e.g.
//
//   count(compartments_calling("NetAPI.network_socket_connect_tcp")) == 1
//   allocation_quota_sum() <= heap_size()
//   !contains(importers_of_mmio("ethernet"), "js_app")
//
// Transitive authority queries run over the whole-image authority graph
// (src/analysis), so policies can express what flat per-row queries cannot:
//
//   !reachable("compressor", "mmio:ethernet")
//   count(paths_to("mmio:ethernet")) <= 3
//   forall(c, difference(compartments(), importers_of_mmio("uart")),
//          !reachable(c, "mmio:uart"))
//
// A policy document is a sequence of lines; blank lines and '#' comments are
// ignored; every remaining line must evaluate to true.
#ifndef SRC_AUDIT_POLICY_H_
#define SRC_AUDIT_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/json/json.h"

namespace cheriot::analysis {
class AuthorityGraph;
}  // namespace cheriot::analysis

namespace cheriot::audit {

// Expression values: integers, booleans, strings, string lists.
using PolicyValue =
    std::variant<int64_t, bool, std::string, std::vector<std::string>>;

struct PolicyViolation {
  int line = 0;
  std::string expression;  // the line with comments/whitespace stripped
  std::string reason;      // "evaluated to false" or a parse/eval error
  // Source attribution for multi-line documents: the original line text and
  // the 1-based column of the token nearest the failure (0 when the line
  // simply evaluated to false).
  std::string source_line;
  int column = 0;
};

class PolicyEngine {
 public:
  // The engine audits the *report document*, not live kernel state: the
  // same JSON an external integrator would receive.
  explicit PolicyEngine(json::Value report) : report_(std::move(report)) {}

  // Evaluates one expression. Throws std::runtime_error on syntax errors or
  // type mismatches.
  PolicyValue Eval(const std::string& expression) const;
  // Evaluates an expression that must produce a boolean.
  bool CheckExpression(const std::string& expression) const;

  // Checks a whole policy document; returns the violations (empty = pass).
  std::vector<PolicyViolation> CheckDocument(const std::string& policy) const;

  // --- Report query functions (exposed for direct C++ use) ---
  std::vector<std::string> CompartmentsCalling(const std::string& target) const;
  std::vector<std::string> ImportersOfMmio(const std::string& device) const;
  std::vector<std::string> ImportersOfLibrary(const std::string& target) const;
  std::vector<std::string> HoldersOfSealedObject(const std::string& name) const;
  std::vector<std::string> OwnersOfSealingType(const std::string& type) const;
  std::vector<std::string> ExportsOf(const std::string& compartment) const;
  std::vector<std::string> Compartments() const;
  std::vector<std::string> ThreadsEntering(const std::string& compartment) const;
  int64_t AllocationQuotaSum() const;
  int64_t HeapSize() const;
  int64_t CodeSize(const std::string& compartment) const;
  bool CompartmentExists(const std::string& name) const;
  bool Calls(const std::string& caller, const std::string& target) const;
  bool HasErrorHandler(const std::string& compartment) const;

  // --- Transitive queries (authority graph, src/analysis) ---
  // `from` is a compartment name; `resource` is a graph node id — a bare
  // name means a compartment, otherwise use "mmio:<dev>", "library:<name>",
  // "sealing_key:<type>", "alloc_cap:<name>", "sealed_object:<name>".
  bool Reachable(const std::string& from, const std::string& resource) const;
  // Rendered shortest authority paths from every compartment that reaches
  // the resource, e.g. "js_app -> NetAPI -> mmio:ethernet".
  std::vector<std::string> PathsTo(const std::string& resource) const;

  const json::Value& report() const { return report_; }
  // The lazily-built authority graph (shared with the linter).
  const analysis::AuthorityGraph& Graph() const;

 private:
  json::Value report_;
  mutable std::shared_ptr<analysis::AuthorityGraph> graph_;
};

}  // namespace cheriot::audit

#endif  // SRC_AUDIT_POLICY_H_

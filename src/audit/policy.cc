#include "src/audit/policy.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/analysis/authority_graph.h"

namespace cheriot::audit {

namespace {

// A policy failure annotated with the offset (within the expression) of the
// token nearest the failure, so CheckDocument can report line + column for
// multi-line documents.
class PolicyError : public std::runtime_error {
 public:
  PolicyError(const std::string& why, size_t offset)
      : std::runtime_error("policy error: " + why), offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

// Offset of the most recently lexed token. Coercion helpers (ValueTruth,
// ValueInt, ...) fail far from the lexer, so the current token position is
// tracked here rather than threaded through every call.
thread_local size_t t_last_token_begin = 0;

[[noreturn]] void Fail(const std::string& why) {
  throw PolicyError(why, t_last_token_begin);
}

bool ValueTruth(const PolicyValue& v) {
  if (std::holds_alternative<bool>(v)) {
    return std::get<bool>(v);
  }
  Fail("expression is not a boolean");
}

int64_t ValueInt(const PolicyValue& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::get<int64_t>(v);
  }
  Fail("expression is not an integer");
}

std::string ValueString(const PolicyValue& v) {
  if (std::holds_alternative<std::string>(v)) {
    return std::get<std::string>(v);
  }
  Fail("expression is not a string");
}

std::vector<std::string> ValueList(const PolicyValue& v) {
  if (std::holds_alternative<std::vector<std::string>>(v)) {
    return std::get<std::vector<std::string>>(v);
  }
  Fail("expression is not a list");
}

// Splits "name.function" into {name, function}; function may be empty, which
// matches any function of that target.
std::pair<std::string, std::string> SplitTarget(const std::string& t) {
  const auto dot = t.find('.');
  if (dot == std::string::npos) {
    return {t, ""};
  }
  return {t.substr(0, dot), t.substr(dot + 1)};
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  struct Token {
    enum class Kind { kEnd, kInt, kString, kIdent, kPunct };
    Kind kind = Kind::kEnd;
    int64_t int_value = 0;
    std::string text;
    size_t begin = 0;  // offset of the token's first character
  };

  const Token& Peek() {
    if (!has_) {
      next_ = LexOne();
      has_ = true;
    }
    return next_;
  }
  Token Take() {
    Peek();
    has_ = false;
    return next_;
  }
  bool TakePunct(const std::string& p) {
    if (Peek().kind == Token::Kind::kPunct && Peek().text == p) {
      Take();
      return true;
    }
    return false;
  }
  void ExpectPunct(const std::string& p) {
    if (!TakePunct(p)) {
      Fail("expected '" + p + "' near '" + Peek().text + "'");
    }
  }

 private:
  Token LexOne() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    Token t;
    t.begin = pos_;
    t_last_token_begin = pos_;
    if (pos_ >= text_.size()) {
      return t;
    }
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      t.kind = Token::Kind::kInt;
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      std::string digits;
      for (size_t i = pos_; i < end; ++i) {
        if (text_[i] != '_') {
          digits.push_back(text_[i]);
        }
      }
      t.int_value = std::stoll(digits);
      pos_ = end;
      return t;
    }
    if (c == '"') {
      t.kind = Token::Kind::kString;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        t.text.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated string literal");
      }
      ++pos_;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = Token::Kind::kIdent;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        t.text.push_back(text_[pos_++]);
      }
      return t;
    }
    t.kind = Token::Kind::kPunct;
    // Two-character operators first.
    static const char* kTwo[] = {"==", "!=", "<=", ">=", "&&", "||"};
    for (const char* op : kTwo) {
      if (text_.compare(pos_, 2, op) == 0) {
        t.text = op;
        pos_ += 2;
        return t;
      }
    }
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token next_;
  bool has_ = false;
};

class Evaluator {
 public:
  using Env = std::map<std::string, std::string>;

  Evaluator(const PolicyEngine& engine, const std::string& text, Env env = {})
      : engine_(engine), text_(text), env_(std::move(env)), lex_(text_) {}

  PolicyValue Run() {
    PolicyValue v = Or();
    if (lex_.Peek().kind != Lexer::Token::Kind::kEnd) {
      Fail("unexpected trailing token '" + lex_.Peek().text + "'");
    }
    return v;
  }

 private:
  PolicyValue Or() {
    PolicyValue v = And();
    while (lex_.TakePunct("||")) {
      const bool lhs = ValueTruth(v);
      const bool rhs = ValueTruth(And());
      v = PolicyValue(lhs || rhs);
    }
    return v;
  }
  PolicyValue And() {
    PolicyValue v = Compare();
    while (lex_.TakePunct("&&")) {
      const bool lhs = ValueTruth(v);
      const bool rhs = ValueTruth(Compare());
      v = PolicyValue(lhs && rhs);
    }
    return v;
  }
  PolicyValue Compare() {
    PolicyValue v = Sum();
    for (;;) {
      std::string op;
      for (const char* candidate : {"==", "!=", "<=", ">=", "<", ">"}) {
        if (lex_.TakePunct(candidate)) {
          op = candidate;
          break;
        }
      }
      if (op.empty()) {
        return v;
      }
      PolicyValue rhs = Sum();
      if (op == "==" || op == "!=") {
        const bool eq = Equals(v, rhs);
        v = PolicyValue(op == "==" ? eq : !eq);
      } else {
        const int64_t a = ValueInt(v);
        const int64_t b = ValueInt(rhs);
        bool r = false;
        if (op == "<") r = a < b;
        if (op == "<=") r = a <= b;
        if (op == ">") r = a > b;
        if (op == ">=") r = a >= b;
        v = PolicyValue(r);
      }
    }
  }
  static bool Equals(const PolicyValue& a, const PolicyValue& b) {
    if (a.index() != b.index()) {
      // Allow int/bool mismatches to fail rather than throw.
      return false;
    }
    return a == b;
  }
  PolicyValue Sum() {
    PolicyValue v = Unary();
    for (;;) {
      if (lex_.TakePunct("+")) {
        v = PolicyValue(ValueInt(v) + ValueInt(Unary()));
      } else if (lex_.TakePunct("-")) {
        v = PolicyValue(ValueInt(v) - ValueInt(Unary()));
      } else {
        return v;
      }
    }
  }
  PolicyValue Unary() {
    if (lex_.TakePunct("!")) {
      return PolicyValue(!ValueTruth(Unary()));
    }
    if (lex_.TakePunct("-")) {
      return PolicyValue(-ValueInt(Unary()));
    }
    return Primary();
  }

  std::vector<PolicyValue> Args() {
    std::vector<PolicyValue> args;
    lex_.ExpectPunct("(");
    if (lex_.TakePunct(")")) {
      return args;
    }
    for (;;) {
      args.push_back(Or());
      if (lex_.TakePunct(",")) {
        continue;
      }
      lex_.ExpectPunct(")");
      return args;
    }
  }

  PolicyValue Primary() {
    const auto& t = lex_.Peek();
    if (t.kind == Lexer::Token::Kind::kInt) {
      return PolicyValue(lex_.Take().int_value);
    }
    if (t.kind == Lexer::Token::Kind::kString) {
      return PolicyValue(lex_.Take().text);
    }
    if (t.kind == Lexer::Token::Kind::kPunct && t.text == "(") {
      lex_.Take();
      PolicyValue v = Or();
      lex_.ExpectPunct(")");
      return v;
    }
    if (t.kind != Lexer::Token::Kind::kIdent) {
      Fail("unexpected token '" + t.text + "'");
    }
    const std::string name = lex_.Take().text;
    if (name == "true") {
      return PolicyValue(true);
    }
    if (name == "false") {
      return PolicyValue(false);
    }
    if (name == "forall" || name == "exists") {
      return Quantifier(name);
    }
    // A bare identifier (no call parens) is a bound quantifier variable.
    if (!(lex_.Peek().kind == Lexer::Token::Kind::kPunct &&
          lex_.Peek().text == "(")) {
      const auto it = env_.find(name);
      if (it == env_.end()) {
        Fail("unknown identifier: " + name);
      }
      return PolicyValue(it->second);
    }
    return Call(name, Args());
  }

  // forall(var, <list expr>, <body>) / exists(var, <list expr>, <body>).
  // The body is re-evaluated once per element with `var` bound to it; its
  // source text is captured by scanning to the matching close paren, so any
  // expression — including nested quantifiers — works as a body.
  PolicyValue Quantifier(const std::string& name) {
    lex_.ExpectPunct("(");
    if (lex_.Peek().kind != Lexer::Token::Kind::kIdent) {
      Fail(name + " expects a variable name, got '" + lex_.Peek().text + "'");
    }
    const std::string var = lex_.Take().text;
    lex_.ExpectPunct(",");
    const std::vector<std::string> domain = ValueList(Or());
    lex_.ExpectPunct(",");
    const size_t body_begin = lex_.Peek().begin;
    int depth = 0;
    size_t body_end = body_begin;
    for (;;) {
      const auto t = lex_.Take();
      if (t.kind == Lexer::Token::Kind::kEnd) {
        Fail("unterminated " + name + " body");
      }
      if (t.kind == Lexer::Token::Kind::kPunct && t.text == "(") {
        ++depth;
      } else if (t.kind == Lexer::Token::Kind::kPunct && t.text == ")") {
        if (depth == 0) {
          body_end = t.begin;
          break;
        }
        --depth;
      }
    }
    const std::string body = text_.substr(body_begin, body_end - body_begin);
    if (body.find_first_not_of(" \t") == std::string::npos) {
      Fail(name + " has an empty body");
    }
    const bool is_forall = name == "forall";
    for (const auto& element : domain) {
      Env env = env_;
      env[var] = element;
      const bool truth =
          ValueTruth(Evaluator(engine_, body, std::move(env)).Run());
      if (is_forall && !truth) {
        return PolicyValue(false);
      }
      if (!is_forall && truth) {
        return PolicyValue(true);
      }
    }
    return PolicyValue(is_forall);  // vacuous truth / exhausted search
  }

  PolicyValue Call(const std::string& name, std::vector<PolicyValue> args) {
    auto need = [&](size_t n) {
      if (args.size() != n) {
        Fail(name + " expects " + std::to_string(n) + " argument(s)");
      }
    };
    if (name == "count") {
      need(1);
      return PolicyValue(static_cast<int64_t>(ValueList(args[0]).size()));
    }
    if (name == "contains") {
      need(2);
      const auto list = ValueList(args[0]);
      const auto item = ValueString(args[1]);
      for (const auto& s : list) {
        if (s == item) {
          return PolicyValue(true);
        }
      }
      return PolicyValue(false);
    }
    // Set algebra over string lists; results are sorted and deduplicated.
    if (name == "union" || name == "intersect" || name == "difference") {
      need(2);
      auto a = ValueList(args[0]);
      auto b = ValueList(args[1]);
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      std::sort(b.begin(), b.end());
      b.erase(std::unique(b.begin(), b.end()), b.end());
      std::vector<std::string> out;
      if (name == "union") {
        std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                       std::back_inserter(out));
      } else if (name == "intersect") {
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(out));
      } else {
        std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(out));
      }
      return PolicyValue(std::move(out));
    }
    if (name == "reachable") {
      need(2);
      return PolicyValue(
          engine_.Reachable(ValueString(args[0]), ValueString(args[1])));
    }
    if (name == "paths_to") {
      need(1);
      return PolicyValue(engine_.PathsTo(ValueString(args[0])));
    }
    if (name == "compartments_calling") {
      need(1);
      return PolicyValue(engine_.CompartmentsCalling(ValueString(args[0])));
    }
    if (name == "importers_of_mmio") {
      need(1);
      return PolicyValue(engine_.ImportersOfMmio(ValueString(args[0])));
    }
    if (name == "importers_of_library") {
      need(1);
      return PolicyValue(engine_.ImportersOfLibrary(ValueString(args[0])));
    }
    if (name == "holders_of_sealed_object") {
      need(1);
      return PolicyValue(engine_.HoldersOfSealedObject(ValueString(args[0])));
    }
    if (name == "owners_of_sealing_type") {
      need(1);
      return PolicyValue(engine_.OwnersOfSealingType(ValueString(args[0])));
    }
    if (name == "exports_of") {
      need(1);
      return PolicyValue(engine_.ExportsOf(ValueString(args[0])));
    }
    if (name == "compartments") {
      need(0);
      return PolicyValue(engine_.Compartments());
    }
    if (name == "threads_entering") {
      need(1);
      return PolicyValue(engine_.ThreadsEntering(ValueString(args[0])));
    }
    if (name == "allocation_quota_sum") {
      need(0);
      return PolicyValue(engine_.AllocationQuotaSum());
    }
    if (name == "heap_size") {
      need(0);
      return PolicyValue(engine_.HeapSize());
    }
    if (name == "code_size") {
      need(1);
      return PolicyValue(engine_.CodeSize(ValueString(args[0])));
    }
    if (name == "compartment_exists") {
      need(1);
      return PolicyValue(engine_.CompartmentExists(ValueString(args[0])));
    }
    if (name == "calls") {
      need(2);
      return PolicyValue(
          engine_.Calls(ValueString(args[0]), ValueString(args[1])));
    }
    if (name == "has_error_handler") {
      need(1);
      return PolicyValue(engine_.HasErrorHandler(ValueString(args[0])));
    }
    Fail("unknown function: " + name);
  }

  const PolicyEngine& engine_;
  std::string text_;  // owned: quantifier bodies substring into it
  Env env_;
  Lexer lex_;
};

}  // namespace

PolicyValue PolicyEngine::Eval(const std::string& expression) const {
  return Evaluator(*this, expression).Run();
}

bool PolicyEngine::CheckExpression(const std::string& expression) const {
  return ValueTruth(Eval(expression));
}

std::vector<PolicyViolation> PolicyEngine::CheckDocument(
    const std::string& policy) const {
  std::vector<PolicyViolation> violations;
  std::istringstream in(policy);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::string original = line;
    // Strip comments and whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) {
      continue;
    }
    const auto end = line.find_last_not_of(" \t");
    const std::string expr = line.substr(begin, end - begin + 1);
    auto report = [&](const std::string& reason, int column) {
      PolicyViolation v;
      v.line = line_no;
      v.expression = expr;
      v.reason = reason;
      v.source_line = original;
      v.column = column;
      violations.push_back(std::move(v));
    };
    try {
      if (!CheckExpression(expr)) {
        report("evaluated to false", 0);
      }
    } catch (const PolicyError& e) {
      // Column in the original line: offset within the stripped expression
      // plus the stripped leading whitespace, 1-based.
      report(e.what(), static_cast<int>(begin + e.offset() + 1));
    } catch (const std::exception& e) {
      report(e.what(), 0);
    }
  }
  return violations;
}

// --- Report queries ---------------------------------------------------------

std::vector<std::string> PolicyEngine::CompartmentsCalling(
    const std::string& target) const {
  const auto [callee, function] = SplitTarget(target);
  std::vector<std::string> out;
  for (const auto& [name, comp] : report_["compartments"].AsObject()) {
    for (const auto& imp : comp["imports"].AsArray()) {
      if (imp["kind"].AsString() != "call") {
        continue;
      }
      if (imp["compartment_name"].AsString() == callee &&
          (function.empty() || imp["function"].AsString() == function)) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> PolicyEngine::ImportersOfMmio(
    const std::string& device) const {
  std::vector<std::string> out;
  for (const auto& [name, comp] : report_["compartments"].AsObject()) {
    for (const auto& imp : comp["imports"].AsArray()) {
      if (imp["kind"].AsString() == "mmio" &&
          imp["device"].AsString() == device) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> PolicyEngine::ImportersOfLibrary(
    const std::string& target) const {
  const auto [library, function] = SplitTarget(target);
  std::vector<std::string> out;
  for (const auto& [name, comp] : report_["compartments"].AsObject()) {
    for (const auto& imp : comp["imports"].AsArray()) {
      if (imp["kind"].AsString() == "library" &&
          imp["library"].AsString() == library &&
          (function.empty() || imp["function"].AsString() == function)) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> PolicyEngine::HoldersOfSealedObject(
    const std::string& object) const {
  std::vector<std::string> out;
  for (const auto& [name, comp] : report_["compartments"].AsObject()) {
    for (const auto& imp : comp["imports"].AsArray()) {
      const auto& kind = imp["kind"].AsString();
      if ((kind == "sealed_object" || kind == "allocation_capability") &&
          imp["name"].AsString() == object) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> PolicyEngine::OwnersOfSealingType(
    const std::string& type) const {
  std::vector<std::string> out;
  for (const auto& [name, comp] : report_["compartments"].AsObject()) {
    for (const auto& imp : comp["imports"].AsArray()) {
      if (imp["kind"].AsString() == "sealing_key" &&
          imp["sealing_type"].AsString() == type) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> PolicyEngine::ExportsOf(
    const std::string& compartment) const {
  std::vector<std::string> out;
  const auto& comp = report_["compartments"][compartment];
  for (const auto& e : comp["exports"].AsArray()) {
    out.push_back(e["function"].AsString());
  }
  return out;
}

std::vector<std::string> PolicyEngine::Compartments() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : report_["compartments"].AsObject()) {
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> PolicyEngine::ThreadsEntering(
    const std::string& compartment) const {
  std::vector<std::string> out;
  for (const auto& t : report_["threads"].AsArray()) {
    if (t["entry_compartment"].AsString() == compartment) {
      out.push_back(t["name"].AsString());
    }
  }
  return out;
}

int64_t PolicyEngine::AllocationQuotaSum() const {
  int64_t sum = 0;
  for (const auto& [_, comp] : report_["compartments"].AsObject()) {
    for (const auto& imp : comp["imports"].AsArray()) {
      if (imp["kind"].AsString() == "allocation_capability") {
        sum += imp["quota"].AsInt();
      }
    }
  }
  return sum;
}

int64_t PolicyEngine::HeapSize() const { return report_["heap"]["size"].AsInt(); }

int64_t PolicyEngine::CodeSize(const std::string& compartment) const {
  return report_["compartments"][compartment]["code_size"].AsInt();
}

bool PolicyEngine::CompartmentExists(const std::string& name) const {
  return report_["compartments"].Has(name);
}

bool PolicyEngine::Calls(const std::string& caller,
                         const std::string& target) const {
  const auto [callee, function] = SplitTarget(target);
  const auto& comp = report_["compartments"][caller];
  for (const auto& imp : comp["imports"].AsArray()) {
    if (imp["kind"].AsString() == "call" &&
        imp["compartment_name"].AsString() == callee &&
        (function.empty() || imp["function"].AsString() == function)) {
      return true;
    }
  }
  return false;
}

bool PolicyEngine::HasErrorHandler(const std::string& compartment) const {
  const auto& v = report_["compartments"][compartment]["error_handler"];
  return !v.is_null() && v.AsBool();
}

const analysis::AuthorityGraph& PolicyEngine::Graph() const {
  if (!graph_) {
    graph_ = std::make_shared<analysis::AuthorityGraph>(
        analysis::AuthorityGraph::FromReport(report_));
  }
  return *graph_;
}

bool PolicyEngine::Reachable(const std::string& from,
                             const std::string& resource) const {
  return Graph().Reaches(analysis::AuthorityGraph::CanonicalId(from),
                         analysis::AuthorityGraph::CanonicalId(resource));
}

std::vector<std::string> PolicyEngine::PathsTo(
    const std::string& resource) const {
  return Graph().PathsTo(analysis::AuthorityGraph::CanonicalId(resource));
}

}  // namespace cheriot::audit

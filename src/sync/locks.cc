#include "src/sync/sync.h"

namespace cheriot::sync {

namespace {
// Futex-word mutex protocol: 0 = free, 1 = locked, 2 = locked+contended.
// The library entry points run with interrupts disabled (the sentry in the
// import table carries the posture, §2.1), which makes load-modify-store
// atomic on the single-core target.
constexpr Word kFree = 0;
constexpr Word kLocked = 1;
constexpr Word kContended = 2;
}  // namespace

void RegisterLocksLibrary(ImageBuilder& image) {
  if (image.FindLibrary("locks") != nullptr) {
    return;
  }
  auto lib = image.Library("locks");
  lib.CodeSize(512);  // Fig. 5: locks are a small shared library
  lib.Export(
      "mutex_lock",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word timeout = args.size() > 1 ? args[1].word() : ~0u;
        for (;;) {
          const Word v = ctx.LoadWord(word, 0);
          if (v == kFree) {
            ctx.StoreWord(word, 0, kLocked);
            return StatusCap(Status::kOk);
          }
          // Mark contended so unlock knows to wake us, then sleep. The
          // scheduler compares the word again under our (load-only)
          // capability; it cannot fabricate ownership (§3.2.4).
          if (v == kLocked) {
            ctx.StoreWord(word, 0, kContended);
          }
          const Status s = ctx.FutexWait(word, kContended, timeout);
          if (s == Status::kTimedOut) {
            return StatusCap(Status::kTimedOut);
          }
        }
      },
      64, InterruptPosture::kDisabled);
  lib.Export(
      "mutex_unlock",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word v = ctx.LoadWord(word, 0);
        ctx.StoreWord(word, 0, kFree);
        if (v == kContended) {
          ctx.FutexWake(word, 1);
        }
        return StatusCap(Status::kOk);
      },
      64, InterruptPosture::kDisabled);
  lib.Export(
      "mutex_trylock",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        if (ctx.LoadWord(word, 0) == kFree) {
          ctx.StoreWord(word, 0, kLocked);
          return StatusCap(Status::kOk);
        }
        return StatusCap(Status::kWouldBlock);
      },
      64, InterruptPosture::kDisabled);
}

void UseScheduler(ImageBuilder& image, const std::string& compartment) {
  image.Compartment(compartment)
      .ImportCompartment("sched.futex_timed_wait")
      .ImportCompartment("sched.futex_wake")
      .ImportCompartment("sched.yield")
      .ImportCompartment("sched.sleep");
}

void UseAllocator(ImageBuilder& image, const std::string& compartment) {
  image.Compartment(compartment)
      .ImportCompartment("alloc.heap_allocate")
      .ImportCompartment("alloc.heap_free")
      .ImportCompartment("alloc.heap_claim")
      .ImportCompartment("alloc.quota_remaining")
      .ImportLibrary("token.token_unseal");
}

void UseLocks(ImageBuilder& image, const std::string& compartment) {
  RegisterLocksLibrary(image);
  image.Compartment(compartment)
      .ImportLibrary("locks.mutex_lock")
      .ImportLibrary("locks.mutex_unlock")
      .ImportLibrary("locks.mutex_trylock");
  UseScheduler(image, compartment);
}

Status Mutex::Lock(CompartmentCtx& ctx, Word timeout_cycles) {
  return static_cast<Status>(static_cast<int32_t>(
      ctx.LibCall("locks.mutex_lock", {word_, WordCap(timeout_cycles)})
          .word()));
}

void Mutex::Unlock(CompartmentCtx& ctx) {
  ctx.LibCall("locks.mutex_unlock", {word_});
}

}  // namespace cheriot::sync

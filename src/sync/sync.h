// Thread synchronization and communication (§3.2.4), built from the
// scheduler's least-privilege futex primitive.
//
// Locks, semaphores and event groups are *shared libraries*: no security
// context of their own, state lives in a caller-provided futex word, and the
// scheduler is trusted only for availability — it can fail to wake a thread
// but cannot forge lock ownership. Message queues come in two flavours: the
// library (for threads that trust each other) and a compartment that wraps
// the library behind opaque handles for mutual distrust.
//
// Wake-order contract (FIFO): futex and multiwaiter wait queues wake in
// park order — the thread that blocked earliest on a word is the first one
// FutexWake readies, and armed multiwaiters complete in slot order. This is
// a documented guarantee, not an accident: each park stamps
// GuestThread::block_seq from a monotonic counter, Scheduler::FutexWake
// asserts every wait queue is monotone in that stamp, both the stamps and
// the counter are serialized into snapshots (snap::kVersion 2) so the order
// survives restore, and tests/mc_test.cpp pins wake order across a
// snapshot/restore round trip. cheriot-mc's partial-order reduction relies
// on this determinism: wake order is a *decision point*
// (DecisionKind::kWakeOrder) precisely because the default is well-defined.
#ifndef SRC_SYNC_SYNC_H_
#define SRC_SYNC_SYNC_H_

#include <string>

#include "src/firmware/image.h"
#include "src/runtime/compartment_ctx.h"

namespace cheriot::sync {

// --- Library registration (adds "locks", "semaphore", "events", "queue"
// shared libraries to the image) ---
void RegisterLocksLibrary(ImageBuilder& image);
void RegisterSemaphoreLibrary(ImageBuilder& image);
void RegisterEventGroupLibrary(ImageBuilder& image);
void RegisterQueueLibrary(ImageBuilder& image);
// The compartment-hardened message queue (opaque handles, quota-delegated
// allocation, interface hardening).
void RegisterQueueCompartment(ImageBuilder& image);

// --- Import helpers: wire a compartment up to the usual dependencies ---
void UseScheduler(ImageBuilder& image, const std::string& compartment);
void UseAllocator(ImageBuilder& image, const std::string& compartment);
void UseLocks(ImageBuilder& image, const std::string& compartment);
void UseSemaphore(ImageBuilder& image, const std::string& compartment);
void UseEventGroups(ImageBuilder& image, const std::string& compartment);
void UseQueueLibrary(ImageBuilder& image, const std::string& compartment);
void UseQueueCompartment(ImageBuilder& image, const std::string& compartment);

// --- Guest-side wrappers (thin sugar over the library calls) ---

// A futex-backed mutex whose state word the caller owns (typically a private
// compartment global, §3.2.4).
class Mutex {
 public:
  explicit Mutex(Capability word) : word_(word) {}
  Status Lock(CompartmentCtx& ctx, Word timeout_cycles = ~0u);
  void Unlock(CompartmentCtx& ctx);
  const Capability& word() const { return word_; }

 private:
  Capability word_;
};

// RAII guard.
class LockGuard {
 public:
  LockGuard(CompartmentCtx& ctx, Mutex& mutex) : ctx_(ctx), mutex_(mutex) {
    status_ = mutex_.Lock(ctx_);
  }
  ~LockGuard() {
    if (status_ == Status::kOk) {
      mutex_.Unlock(ctx_);
    }
  }
  Status status() const { return status_; }

 private:
  CompartmentCtx& ctx_;
  Mutex& mutex_;
  Status status_;
};

class Semaphore {
 public:
  explicit Semaphore(Capability word) : word_(word) {}
  Status Get(CompartmentCtx& ctx, Word timeout_cycles = ~0u);
  Status Put(CompartmentCtx& ctx);

 private:
  Capability word_;
};

class EventGroup {
 public:
  explicit EventGroup(Capability word) : word_(word) {}
  // Sets bits and wakes waiters.
  void Set(CompartmentCtx& ctx, Word bits);
  void Clear(CompartmentCtx& ctx, Word bits);
  // Waits until (value & bits) is nonzero (any) or covers bits (all).
  Status WaitAny(CompartmentCtx& ctx, Word bits, Word timeout_cycles = ~0u);
  Status WaitAll(CompartmentCtx& ctx, Word bits, Word timeout_cycles = ~0u);

 private:
  Capability word_;
};

// Library message queue over a caller-provided heap buffer.
// Buffer layout: {elem_size, capacity, head, tail, count, send_futex,
// recv_futex, pad} then data.
inline constexpr Word kQueueHeaderBytes = 32;
inline Word QueueBufferBytes(Word elem_size, Word capacity) {
  return kQueueHeaderBytes + elem_size * capacity;
}

class Queue {
 public:
  explicit Queue(Capability buffer) : buffer_(buffer) {}
  static Queue Init(CompartmentCtx& ctx, Capability buffer, Word elem_size,
                    Word capacity);
  Status Send(CompartmentCtx& ctx, const Capability& msg,
              Word timeout_cycles = ~0u);
  Status Receive(CompartmentCtx& ctx, const Capability& out,
                 Word timeout_cycles = ~0u);
  Word Count(CompartmentCtx& ctx) const;
  const Capability& buffer() const { return buffer_; }

 private:
  Capability buffer_;
};

}  // namespace cheriot::sync

#endif  // SRC_SYNC_SYNC_H_

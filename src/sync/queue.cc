#include "src/sync/sync.h"

#include <vector>

#include "src/runtime/hardening.h"

namespace cheriot::sync {

namespace {
// Buffer layout offsets (see sync.h).
constexpr int kElemSize = 0;
constexpr int kCapacity = 4;
constexpr int kHead = 8;
constexpr int kTail = 12;
constexpr int kCount = 16;
constexpr int kSpaceSeq = 20;  // futex word: bumped when space appears
constexpr int kItemSeq = 24;   // futex word: bumped when an item appears

Capability QueueSendImpl(CompartmentCtx& ctx, const Capability& buf,
                         const Capability& msg, Word timeout) {
  const Word elem_size = ctx.LoadWord(buf, kElemSize);
  const Word capacity = ctx.LoadWord(buf, kCapacity);
  if (elem_size == 0 || capacity == 0 ||
      !hardening::CheckPointer(msg, elem_size,
                               PermissionSet({Permission::kLoad}))) {
    return StatusCap(Status::kInvalidArgument);
  }
  for (;;) {
    const Word count = ctx.LoadWord(buf, kCount);
    if (count < capacity) {
      const Word tail = ctx.LoadWord(buf, kTail);
      std::vector<uint8_t> tmp(elem_size);
      ctx.ReadBytes(msg, 0, tmp.data(), elem_size);
      ctx.WriteBytes(buf, kQueueHeaderBytes + tail * elem_size, tmp.data(),
                     elem_size);
      ctx.StoreWord(buf, kTail, (tail + 1) % capacity);
      ctx.StoreWord(buf, kCount, count + 1);
      ctx.StoreWord(buf, kItemSeq, ctx.LoadWord(buf, kItemSeq) + 1);
      ctx.FutexWake(buf.AddOffset(kItemSeq), 1);
      return StatusCap(Status::kOk);
    }
    const Word seq = ctx.LoadWord(buf, kSpaceSeq);
    const Status s = ctx.FutexWait(buf.AddOffset(kSpaceSeq), seq, timeout);
    if (s == Status::kTimedOut) {
      return StatusCap(Status::kTimedOut);
    }
  }
}

Capability QueueReceiveImpl(CompartmentCtx& ctx, const Capability& buf,
                            const Capability& out, Word timeout) {
  const Word elem_size = ctx.LoadWord(buf, kElemSize);
  const Word capacity = ctx.LoadWord(buf, kCapacity);
  if (elem_size == 0 || capacity == 0 ||
      !hardening::CheckPointer(
          out, elem_size,
          PermissionSet({Permission::kLoad, Permission::kStore}))) {
    return StatusCap(Status::kInvalidArgument);
  }
  for (;;) {
    const Word count = ctx.LoadWord(buf, kCount);
    if (count > 0) {
      const Word head = ctx.LoadWord(buf, kHead);
      std::vector<uint8_t> tmp(elem_size);
      ctx.ReadBytes(buf, kQueueHeaderBytes + head * elem_size, tmp.data(),
                    elem_size);
      ctx.WriteBytes(out, 0, tmp.data(), elem_size);
      ctx.StoreWord(buf, kHead, (head + 1) % capacity);
      ctx.StoreWord(buf, kCount, count - 1);
      ctx.StoreWord(buf, kSpaceSeq, ctx.LoadWord(buf, kSpaceSeq) + 1);
      ctx.FutexWake(buf.AddOffset(kSpaceSeq), 1);
      return StatusCap(Status::kOk);
    }
    const Word seq = ctx.LoadWord(buf, kItemSeq);
    const Status s = ctx.FutexWait(buf.AddOffset(kItemSeq), seq, timeout);
    if (s == Status::kTimedOut) {
      return StatusCap(Status::kTimedOut);
    }
  }
}
}  // namespace

void RegisterQueueLibrary(ImageBuilder& image) {
  if (image.FindLibrary("queue") != nullptr) {
    return;
  }
  auto lib = image.Library("queue");
  lib.CodeSize(768);
  lib.Export(
      "queue_init",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability buf = args[0];
        const Word elem_size = args[1].word();
        const Word capacity = args[2].word();
        if (!hardening::CheckPointer(
                buf, QueueBufferBytes(elem_size, capacity),
                PermissionSet({Permission::kLoad, Permission::kStore}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        ctx.Zero(buf, 0, kQueueHeaderBytes);
        ctx.StoreWord(buf, kElemSize, elem_size);
        ctx.StoreWord(buf, kCapacity, capacity);
        return StatusCap(Status::kOk);
      },
      64, InterruptPosture::kDisabled);
  lib.Export(
      "queue_send",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        return QueueSendImpl(ctx, args[0], args[1],
                             args.size() > 2 ? args[2].word() : ~0u);
      },
      128, InterruptPosture::kDisabled);
  lib.Export(
      "queue_receive",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        return QueueReceiveImpl(ctx, args[0], args[1],
                                args.size() > 2 ? args[2].word() : ~0u);
      },
      128, InterruptPosture::kDisabled);
  lib.Export(
      "queue_count",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        return WordCap(ctx.LoadWord(args[0], kCount));
      },
      64, InterruptPosture::kDisabled);
}

void RegisterQueueCompartment(ImageBuilder& image) {
  RegisterQueueLibrary(image);
  if (image.FindCompartment("message_queue") != nullptr) {
    return;
  }
  // The hardened flavour (§3.2.4): queues become opaque objects; memory is
  // allocated with the *caller's* quota (quota delegation, §3.2.3) via the
  // sealed-allocation API so the caller cannot free it out from under us.
  auto comp = image.Compartment("message_queue");
  comp.CodeSize(2 * 1024, /*wrapper_bytes=*/700)
      .Globals(16)
      .OwnSealingType("message_queue.handle")
      .ImportCompartment("alloc.token_obj_new")
      .ImportCompartment("alloc.token_obj_destroy")
      .ImportLibrary("token.token_unseal")
      .ImportLibrary("queue.queue_init")
      .ImportLibrary("queue.queue_send")
      .ImportLibrary("queue.queue_receive")
      .ImportLibrary("queue.queue_count");
  UseScheduler(image, "message_queue");

  auto unseal_handle = [](CompartmentCtx& ctx, const Capability& handle) {
    return ctx.TokenUnseal(ctx.SealingKey("message_queue.handle"), handle);
  };

  comp.Export(
      "create",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability caller_quota = args[0];
        const Word elem_size = args[1].word();
        const Word capacity = args[2].word();
        if (elem_size == 0 || elem_size > 4096 || capacity == 0 ||
            capacity > 4096) {
          return StatusCap(Status::kInvalidArgument);
        }
        const Capability key = ctx.SealingKey("message_queue.handle");
        const Capability handle = ctx.TokenObjNew(
            caller_quota, key, QueueBufferBytes(elem_size, capacity));
        if (!handle.tag()) {
          return handle;  // propagate allocator status
        }
        const Capability buf = ctx.TokenUnseal(key, handle);
        ctx.LibCall("queue.queue_init",
                    {buf, WordCap(elem_size), WordCap(capacity)});
        return handle;
      });
  comp.Export("send", [unseal_handle](CompartmentCtx& ctx,
                                      const std::vector<Capability>& args) {
    const Capability buf = unseal_handle(ctx, args[0]);
    if (!buf.tag()) {
      return StatusCap(Status::kInvalidArgument);
    }
    return QueueSendImpl(ctx, buf, args[1],
                         args.size() > 2 ? args[2].word() : ~0u);
  });
  comp.Export("receive", [unseal_handle](CompartmentCtx& ctx,
                                         const std::vector<Capability>& args) {
    const Capability buf = unseal_handle(ctx, args[0]);
    if (!buf.tag()) {
      return StatusCap(Status::kInvalidArgument);
    }
    return QueueReceiveImpl(ctx, buf, args[1],
                            args.size() > 2 ? args[2].word() : ~0u);
  });
  comp.Export("count", [unseal_handle](CompartmentCtx& ctx,
                                       const std::vector<Capability>& args) {
    const Capability buf = unseal_handle(ctx, args[0]);
    if (!buf.tag()) {
      return StatusCap(Status::kInvalidArgument);
    }
    return WordCap(ctx.LoadWord(buf, kCount));
  });
  comp.Export("destroy", [](CompartmentCtx& ctx,
                            const std::vector<Capability>& args) {
    // Destroying requires both the caller's allocation capability and our
    // sealing key (§3.2.3).
    return StatusCap(ctx.TokenObjDestroy(
        args[0], ctx.SealingKey("message_queue.handle"), args[1]));
  });
}

void UseQueueLibrary(ImageBuilder& image, const std::string& compartment) {
  RegisterQueueLibrary(image);
  image.Compartment(compartment)
      .ImportLibrary("queue.queue_init")
      .ImportLibrary("queue.queue_send")
      .ImportLibrary("queue.queue_receive")
      .ImportLibrary("queue.queue_count");
  UseScheduler(image, compartment);
}

void UseQueueCompartment(ImageBuilder& image, const std::string& compartment) {
  RegisterQueueCompartment(image);
  image.Compartment(compartment)
      .ImportCompartment("message_queue.create")
      .ImportCompartment("message_queue.send")
      .ImportCompartment("message_queue.receive")
      .ImportCompartment("message_queue.count")
      .ImportCompartment("message_queue.destroy");
}

Queue Queue::Init(CompartmentCtx& ctx, Capability buffer, Word elem_size,
                  Word capacity) {
  ctx.LibCall("queue.queue_init",
              {buffer, WordCap(elem_size), WordCap(capacity)});
  return Queue(buffer);
}

Status Queue::Send(CompartmentCtx& ctx, const Capability& msg,
                   Word timeout_cycles) {
  return static_cast<Status>(static_cast<int32_t>(
      ctx.LibCall("queue.queue_send", {buffer_, msg, WordCap(timeout_cycles)})
          .word()));
}

Status Queue::Receive(CompartmentCtx& ctx, const Capability& out,
                      Word timeout_cycles) {
  return static_cast<Status>(static_cast<int32_t>(
      ctx.LibCall("queue.queue_receive",
                  {buffer_, out, WordCap(timeout_cycles)})
          .word()));
}

Word Queue::Count(CompartmentCtx& ctx) const {
  return ctx.LibCall("queue.queue_count", {buffer_}).word();
}

}  // namespace cheriot::sync

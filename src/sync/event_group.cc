#include "src/sync/sync.h"

namespace cheriot::sync {

void RegisterEventGroupLibrary(ImageBuilder& image) {
  if (image.FindLibrary("events") != nullptr) {
    return;
  }
  auto lib = image.Library("events");
  lib.CodeSize(384);
  lib.Export(
      "event_set",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word bits = args[1].word();
        ctx.StoreWord(word, 0, ctx.LoadWord(word, 0) | bits);
        ctx.FutexWake(word, 1 << 30);
        return StatusCap(Status::kOk);
      },
      64, InterruptPosture::kDisabled);
  lib.Export(
      "event_clear",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word bits = args[1].word();
        ctx.StoreWord(word, 0, ctx.LoadWord(word, 0) & ~bits);
        return StatusCap(Status::kOk);
      },
      64, InterruptPosture::kDisabled);
  lib.Export(
      "event_wait",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word bits = args[1].word();
        const bool all = args[2].word() != 0;
        const Word timeout = args.size() > 3 ? args[3].word() : ~0u;
        for (;;) {
          const Word v = ctx.LoadWord(word, 0);
          const bool satisfied = all ? ((v & bits) == bits) : ((v & bits) != 0);
          if (satisfied) {
            return WordCap(v);
          }
          const Status s = ctx.FutexWait(word, v, timeout);
          if (s == Status::kTimedOut) {
            return StatusCap(Status::kTimedOut);
          }
        }
      },
      64, InterruptPosture::kDisabled);
}

void UseEventGroups(ImageBuilder& image, const std::string& compartment) {
  RegisterEventGroupLibrary(image);
  image.Compartment(compartment)
      .ImportLibrary("events.event_set")
      .ImportLibrary("events.event_clear")
      .ImportLibrary("events.event_wait");
  UseScheduler(image, compartment);
}

void EventGroup::Set(CompartmentCtx& ctx, Word bits) {
  ctx.LibCall("events.event_set", {word_, WordCap(bits)});
}

void EventGroup::Clear(CompartmentCtx& ctx, Word bits) {
  ctx.LibCall("events.event_clear", {word_, WordCap(bits)});
}

Status EventGroup::WaitAny(CompartmentCtx& ctx, Word bits,
                           Word timeout_cycles) {
  const Capability r = ctx.LibCall(
      "events.event_wait", {word_, WordCap(bits), WordCap(0), WordCap(timeout_cycles)});
  const auto v = static_cast<int32_t>(r.word());
  return v < 0 ? static_cast<Status>(v) : Status::kOk;
}

Status EventGroup::WaitAll(CompartmentCtx& ctx, Word bits,
                           Word timeout_cycles) {
  const Capability r = ctx.LibCall(
      "events.event_wait", {word_, WordCap(bits), WordCap(1), WordCap(timeout_cycles)});
  const auto v = static_cast<int32_t>(r.word());
  return v < 0 ? static_cast<Status>(v) : Status::kOk;
}

}  // namespace cheriot::sync

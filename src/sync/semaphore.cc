#include "src/sync/sync.h"

namespace cheriot::sync {

void RegisterSemaphoreLibrary(ImageBuilder& image) {
  if (image.FindLibrary("semaphore") != nullptr) {
    return;
  }
  auto lib = image.Library("semaphore");
  lib.CodeSize(256);
  // The futex word *is* the counter.
  lib.Export(
      "sem_get",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word timeout = args.size() > 1 ? args[1].word() : ~0u;
        for (;;) {
          const Word count = ctx.LoadWord(word, 0);
          if (count > 0) {
            ctx.StoreWord(word, 0, count - 1);
            return StatusCap(Status::kOk);
          }
          const Status s = ctx.FutexWait(word, 0, timeout);
          if (s == Status::kTimedOut) {
            return StatusCap(Status::kTimedOut);
          }
        }
      },
      64, InterruptPosture::kDisabled);
  lib.Export(
      "sem_put",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        const Capability word = args[0];
        const Word count = ctx.LoadWord(word, 0);
        ctx.StoreWord(word, 0, count + 1);
        if (count == 0) {
          ctx.FutexWake(word, 1);
        }
        return StatusCap(Status::kOk);
      },
      64, InterruptPosture::kDisabled);
}

void UseSemaphore(ImageBuilder& image, const std::string& compartment) {
  RegisterSemaphoreLibrary(image);
  image.Compartment(compartment)
      .ImportLibrary("semaphore.sem_get")
      .ImportLibrary("semaphore.sem_put");
  UseScheduler(image, compartment);
}

Status Semaphore::Get(CompartmentCtx& ctx, Word timeout_cycles) {
  return static_cast<Status>(static_cast<int32_t>(
      ctx.LibCall("semaphore.sem_get", {word_, WordCap(timeout_cycles)})
          .word()));
}

Status Semaphore::Put(CompartmentCtx& ctx) {
  return static_cast<Status>(static_cast<int32_t>(
      ctx.LibCall("semaphore.sem_put", {word_}).word()));
}

}  // namespace cheriot::sync

// MiniVM: a small stack-based bytecode interpreter standing in for the
// Microvium JavaScript engine (§5.2, DESIGN.md §1). Provided as a *shared
// library*: no mutable globals of its own — all interpreter state lives in a
// caller-supplied arena allocated from the caller's default allocation
// capability, exactly the integration shape the paper describes for
// Microvium (memory hooks bound to the default allocation capability).
//
// Bytecode model: 32-bit operands, a value stack, 16 VM globals, host
// function table. Instructions:
//   PUSH imm | ADD SUB MUL | DUP DROP | LT EQ GT | JMP off | JZ off
//   LOADG i | STOREG i | CALLHOST i(nargs) | SLEEP | YIELD? (via host)
//   HALT
#ifndef SRC_JS_MINIVM_H_
#define SRC_JS_MINIVM_H_

#include <functional>
#include <string>
#include <vector>

#include "src/firmware/image.h"
#include "src/runtime/compartment_ctx.h"

namespace cheriot::js {

enum class Op : uint8_t {
  kHalt = 0,
  kPush = 1,
  kAdd = 2,
  kSub = 3,
  kMul = 4,
  kDup = 5,
  kDrop = 6,
  kLt = 7,
  kEq = 8,
  kGt = 9,
  kJmp = 10,
  kJz = 11,
  kLoadGlobal = 12,
  kStoreGlobal = 13,
  kCallHost = 14,  // operand: (host_index << 8) | nargs; result pushed
  kNot = 15,
  kAnd = 16,
  kOr = 17,
};

struct Instruction {
  Op op;
  int32_t operand = 0;
};

using Program = std::vector<Instruction>;

// Host interface: functions the embedding compartment exposes to scripts.
// Receives the popped arguments (first argument first) and returns a value.
using HostFn = std::function<Word(CompartmentCtx&, const std::vector<Word>&)>;

struct VmResult {
  enum class Kind { kHalted, kError, kOutOfFuel } kind = Kind::kHalted;
  Word top = 0;           // top of stack at halt (0 if empty)
  uint64_t executed = 0;  // instructions retired
};

// Interpreter arena layout in guest memory (all words):
//   [0]   stack pointer (index into stack area)
//   [1]   program counter
//   [2..17]  16 VM globals
//   [18..]   value stack
inline constexpr Word kVmArenaWords = 18 + 64;
inline constexpr Word kVmArenaBytes = kVmArenaWords * 4;

// Registers the "minivm" shared library in the image. The library export
// cannot take a std::function table through registers, so embedders run the
// interpreter via js::Run() below, which charges the same costs; the library
// registration exists so the dependency is visible to auditing.
void RegisterMiniVmLibrary(ImageBuilder& image);

// Runs `program` against a guest arena until HALT, an error, or `fuel`
// instructions. The arena must be a writable capability of at least
// kVmArenaBytes; host functions are dispatched by CALLHOST.
VmResult Run(CompartmentCtx& ctx, const Capability& arena,
             const Program& program, const std::vector<HostFn>& host_table,
             uint64_t fuel = ~0ull);

// Resets an arena (zeroes registers, stack, globals).
void ResetArena(CompartmentCtx& ctx, const Capability& arena);

// --- Assembler: builds programs from text mnemonics, one per line:
//   push 42 / add / callhost 2 1 / jz +3 / jmp -5 / loadg 0 / halt
// '#' starts a comment. Throws std::invalid_argument on bad input.
Program Assemble(const std::string& source);

}  // namespace cheriot::js

#endif  // SRC_JS_MINIVM_H_

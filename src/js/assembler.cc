#include <map>
#include <sstream>
#include <stdexcept>

#include "src/js/minivm.h"

namespace cheriot::js {

Program Assemble(const std::string& source) {
  static const std::map<std::string, Op> kMnemonics = {
      {"halt", Op::kHalt},      {"push", Op::kPush},
      {"add", Op::kAdd},        {"sub", Op::kSub},
      {"mul", Op::kMul},        {"dup", Op::kDup},
      {"drop", Op::kDrop},      {"lt", Op::kLt},
      {"eq", Op::kEq},          {"gt", Op::kGt},
      {"jmp", Op::kJmp},        {"jz", Op::kJz},
      {"loadg", Op::kLoadGlobal},
      {"storeg", Op::kStoreGlobal},
      {"callhost", Op::kCallHost},
      {"not", Op::kNot},        {"and", Op::kAnd},
      {"or", Op::kOr},
  };

  Program program;
  std::map<std::string, size_t> labels;
  std::vector<std::pair<size_t, std::string>> fixups;  // (pc, label)

  std::istringstream in(source);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;
    }
    if (word.back() == ':') {
      labels[word.substr(0, word.size() - 1)] = program.size();
      if (!(ls >> word)) {
        continue;
      }
    }
    auto it = kMnemonics.find(word);
    if (it == kMnemonics.end()) {
      throw std::invalid_argument("minivm asm line " + std::to_string(line_no) +
                                  ": unknown mnemonic '" + word + "'");
    }
    Instruction ins{it->second, 0};
    if (ins.op == Op::kCallHost) {
      int index = 0;
      int nargs = 0;
      if (!(ls >> index >> nargs)) {
        throw std::invalid_argument("minivm asm line " +
                                    std::to_string(line_no) +
                                    ": callhost needs index and nargs");
      }
      ins.operand = (index << 8) | (nargs & 0xFF);
    } else if (ins.op == Op::kPush || ins.op == Op::kLoadGlobal ||
               ins.op == Op::kStoreGlobal || ins.op == Op::kJmp ||
               ins.op == Op::kJz) {
      std::string operand;
      if (!(ls >> operand)) {
        throw std::invalid_argument("minivm asm line " +
                                    std::to_string(line_no) +
                                    ": missing operand");
      }
      if ((ins.op == Op::kJmp || ins.op == Op::kJz) &&
          (std::isalpha(static_cast<unsigned char>(operand[0])) ||
           operand[0] == '_')) {
        fixups.emplace_back(program.size(), operand);
      } else {
        ins.operand = std::stoi(operand);
      }
    }
    program.push_back(ins);
  }
  for (const auto& [pc, label] : fixups) {
    auto it = labels.find(label);
    if (it == labels.end()) {
      throw std::invalid_argument("minivm asm: undefined label '" + label + "'");
    }
    program[pc].operand =
        static_cast<int32_t>(it->second) - static_cast<int32_t>(pc);
  }
  return program;
}

}  // namespace cheriot::js

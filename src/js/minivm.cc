#include "src/js/minivm.h"

#include "src/base/costs.h"

namespace cheriot::js {

namespace {
// Arena word offsets.
constexpr int kSp = 0;
constexpr int kPc = 1;
constexpr int kGlobals = 2;
constexpr int kStack = 18;
constexpr int kStackWords = kVmArenaWords - kStack;

// Interpreter dispatch cost per bytecode op (an interpreted VM runs tens of
// native instructions per opcode).
constexpr Cycles kDispatchCost = 25;
}  // namespace

void RegisterMiniVmLibrary(ImageBuilder& image) {
  if (image.FindLibrary("minivm") != nullptr) {
    return;
  }
  auto lib = image.Library("minivm");
  lib.CodeSize(6 * 1024);  // Microvium is ~6K LoC (§5.2)
  // Marker export: makes the dependency auditable; the callable interpreter
  // surface is js::Run (see header).
  lib.Export("interpreter",
             [](CompartmentCtx&, const std::vector<Capability>&) {
               return StatusCap(Status::kOk);
             });
}

void ResetArena(CompartmentCtx& ctx, const Capability& arena) {
  ctx.Zero(arena, 0, kVmArenaBytes);
}

VmResult Run(CompartmentCtx& ctx, const Capability& arena,
             const Program& program, const std::vector<HostFn>& host_table,
             uint64_t fuel) {
  VmResult result;
  auto load = [&](int word_index) {
    return ctx.LoadWord(arena, word_index * 4);
  };
  auto store = [&](int word_index, Word v) {
    ctx.StoreWord(arena, word_index * 4, v);
  };
  auto push = [&](Word v) -> bool {
    const Word sp = load(kSp);
    if (sp >= kStackWords) {
      return false;
    }
    store(kStack + static_cast<int>(sp), v);
    store(kSp, sp + 1);
    return true;
  };
  auto pop = [&](Word* v) -> bool {
    const Word sp = load(kSp);
    if (sp == 0) {
      return false;
    }
    *v = load(kStack + static_cast<int>(sp) - 1);
    store(kSp, sp - 1);
    return true;
  };

  Word pc = load(kPc);
  while (result.executed < fuel) {
    if (pc >= program.size()) {
      result.kind = VmResult::Kind::kError;
      break;
    }
    const Instruction& ins = program[pc];
    ++pc;
    ++result.executed;
    ctx.Burn(kDispatchCost);
    Word a = 0;
    Word b = 0;
    bool ok = true;
    switch (ins.op) {
      case Op::kHalt: {
        const Word sp = load(kSp);
        if (sp > 0) {
          result.top = load(kStack + static_cast<int>(sp) - 1);
        }
        store(kPc, pc);
        result.kind = VmResult::Kind::kHalted;
        return result;
      }
      case Op::kPush:
        ok = push(static_cast<Word>(ins.operand));
        break;
      case Op::kAdd:
        ok = pop(&b) && pop(&a) && push(a + b);
        break;
      case Op::kSub:
        ok = pop(&b) && pop(&a) && push(a - b);
        break;
      case Op::kMul:
        ok = pop(&b) && pop(&a) && push(a * b);
        break;
      case Op::kDup:
        ok = pop(&a) && push(a) && push(a);
        break;
      case Op::kDrop:
        ok = pop(&a);
        break;
      case Op::kLt:
        ok = pop(&b) && pop(&a) && push(a < b ? 1 : 0);
        break;
      case Op::kEq:
        ok = pop(&b) && pop(&a) && push(a == b ? 1 : 0);
        break;
      case Op::kGt:
        ok = pop(&b) && pop(&a) && push(a > b ? 1 : 0);
        break;
      case Op::kNot:
        ok = pop(&a) && push(a == 0 ? 1 : 0);
        break;
      case Op::kAnd:
        ok = pop(&b) && pop(&a) && push((a != 0 && b != 0) ? 1 : 0);
        break;
      case Op::kOr:
        ok = pop(&b) && pop(&a) && push((a != 0 || b != 0) ? 1 : 0);
        break;
      case Op::kJmp:
        pc = static_cast<Word>(static_cast<int64_t>(pc) + ins.operand - 1);
        break;
      case Op::kJz:
        ok = pop(&a);
        if (ok && a == 0) {
          pc = static_cast<Word>(static_cast<int64_t>(pc) + ins.operand - 1);
        }
        break;
      case Op::kLoadGlobal:
        ok = ins.operand >= 0 && ins.operand < 16 &&
             push(load(kGlobals + ins.operand));
        break;
      case Op::kStoreGlobal:
        ok = pop(&a) && ins.operand >= 0 && ins.operand < 16;
        if (ok) {
          store(kGlobals + ins.operand, a);
        }
        break;
      case Op::kCallHost: {
        const int index = ins.operand >> 8;
        const int nargs = ins.operand & 0xFF;
        if (index < 0 || index >= static_cast<int>(host_table.size())) {
          ok = false;
          break;
        }
        std::vector<Word> args(nargs);
        for (int i = nargs - 1; i >= 0 && ok; --i) {
          ok = pop(&args[i]);
        }
        if (ok) {
          store(kPc, pc);  // host may re-enter/inspect
          const Word r = host_table[index](ctx, args);
          ok = push(r);
        }
        break;
      }
    }
    if (!ok) {
      result.kind = VmResult::Kind::kError;
      store(kPc, pc);
      return result;
    }
  }
  if (result.executed >= fuel) {
    result.kind = VmResult::Kind::kOutOfFuel;
    store(kPc, pc);
  }
  return result;
}

}  // namespace cheriot::js

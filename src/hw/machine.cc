#include "src/hw/machine.h"

#include <algorithm>

namespace cheriot {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.sram_base, config.sram_size, &clock_),
      leds_(&clock_),
      timer_(&clock_, &irqs_),
      revoker_(&memory_, &irqs_),
      ethernet_(&irqs_) {
  uart_.set_echo(config.uart_echo);

  memory_.AddMmioRegion(kUartMmioBase, kMmioRegionSize,
                        [this](Address o, bool s, Word v) { return uart_.Mmio(o, s, v); });
  memory_.AddMmioRegion(kLedMmioBase, kMmioRegionSize,
                        [this](Address o, bool s, Word v) { return leds_.Mmio(o, s, v); });
  memory_.AddMmioRegion(kTimerMmioBase, kMmioRegionSize,
                        [this](Address o, bool s, Word v) { return timer_.Mmio(o, s, v); });
  memory_.AddMmioRegion(kRevokerMmioBase, kMmioRegionSize,
                        [this](Address o, bool s, Word v) { return revoker_.Mmio(o, s, v); });
  memory_.AddMmioRegion(kEthernetMmioBase, kMmioRegionSize,
                        [this](Address o, bool s, Word v) { return ethernet_.Mmio(o, s, v); });
  memory_.AddMmioRegion(kEntropyMmioBase, kMmioRegionSize,
                        [this](Address o, bool s, Word v) { return entropy_.Mmio(o, s, v); });

  // Background hardware advances with the clock. Registered as the raw hook:
  // this dispatch happens on every simulated access, so it must not pay a
  // std::function indirection.
  RebindHostHandles();
}

void Machine::RebindHostHandles() {
  clock_.SetRawHook(
      [](void* self, Cycles delta) {
        auto* machine = static_cast<Machine*>(self);
        machine->revoker_.Advance(delta);
        machine->timer_.Poll();
      },
      this);
  revoker_.set_trace(trace_);
}

bool Machine::HasFutureEvent() const {
  return timer_.armed() || HasFutureEventIgnoringTimer();
}

bool Machine::HasFutureEventIgnoringTimer() const {
  if (revoker_.sweeping()) {
    return true;
  }
  for (const auto& source : next_event_sources_) {
    if (source().has_value()) {
      return true;
    }
  }
  return false;
}

std::optional<Cycles> Machine::NextHardwareEvent() const {
  std::optional<Cycles> next;
  if (revoker_.sweeping()) {
    next = clock_.now() + std::max<Cycles>(revoker_.CyclesUntilDone(), 1);
  }
  for (const auto& source : next_event_sources_) {
    if (auto n = source()) {
      if (!next || *n < *next) {
        next = *n;
      }
    }
  }
  return next;
}

Cycles Machine::AdvanceIdle(Cycles max_skip, bool ignore_timer) {
  if (irqs_.AnyPending()) {
    return 0;
  }
  const Cycles now = clock_.now();
  Cycles target = now + max_skip;
  if (!ignore_timer && timer_.armed()) {
    target = std::min(target, std::max(timer_.deadline(), now + 1));
  }
  if (revoker_.sweeping()) {
    target = std::min(target, now + std::max<Cycles>(revoker_.CyclesUntilDone(), 1));
  }
  for (auto& source : next_event_sources_) {
    if (auto next = source()) {
      target = std::min(target, std::max(*next, now + 1));
    }
  }
  if (target <= now) {
    target = now + 1;
  }
  clock_.Tick(target - now);
  return target - now;
}

}  // namespace cheriot

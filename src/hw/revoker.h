// The hardware revoker (§2.1): asynchronously sweeps every capability in
// SRAM, invalidating any whose base points at a granule with its revocation
// bit set. Exposes a completed-sweep epoch counter and raises an interrupt
// when a sweep finishes.
#ifndef SRC_HW_REVOKER_H_
#define SRC_HW_REVOKER_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/hw/devices.h"
#include "src/mem/memory.h"

namespace cheriot {

namespace trace {
class TraceRecorder;
}  // namespace trace

class Revoker {
 public:
  Revoker(Memory* memory, InterruptController* irqs)
      : memory_(memory), irqs_(irqs) {}

  // MMIO register bank: 0 = epoch (completed sweeps), 4 = control (write 1
  // to start a sweep; idempotent while sweeping), 8 = status (1 = sweeping),
  // 12 = interrupt-request (write 1 to get an IRQ at next completion).
  Word Mmio(Address offset, bool is_store, Word value);

  // Clock tick hook: advances the sweep by delta cycles of background work.
  // Inline early-out — this runs on every simulated access.
  void Advance(Cycles delta) {
    if (!sweeping_) {
      return;
    }
    AdvanceSweep(delta);
  }

  void StartSweep();
  bool sweeping() const { return sweeping_; }
  uint32_t epoch() const { return epoch_; }
  // Epoch after which memory freed *now* is safe to reuse: the next sweep to
  // *begin* must complete. If a sweep is mid-flight it may already have
  // passed the object, so it takes the one after.
  uint32_t SafeEpochForFreeNow() const {
    return epoch_ + (sweeping_ ? 2 : 1);
  }
  // Cycles until the current sweep completes (0 if idle) — used by the idle
  // loop's time-skip.
  Cycles CyclesUntilDone() const;

  // Published by Machine::set_trace; sweep begin/end events are emitted from
  // here because only the revoker knows when a sweep actually completes.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  // Snapshot save/restore (DESIGN.md §10): sweep progress is guest-visible
  // state; memory_/irqs_/trace_ are host handles owned by the Machine.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  void AdvanceSweep(Cycles delta);

  Memory* memory_;
  InterruptController* irqs_;
  trace::TraceRecorder* trace_ = nullptr;
  bool sweeping_ = false;
  bool restart_requested_ = false;
  bool irq_requested_ = false;
  uint32_t epoch_ = 0;
  size_t next_granule_ = 0;
  Cycles budget_ = 0;
};

}  // namespace cheriot

#endif  // SRC_HW_REVOKER_H_

#include "src/hw/revoker.h"

#include "src/base/costs.h"
#include "src/snap/wire.h"
#include "src/trace/trace.h"

namespace cheriot {

Word Revoker::Mmio(Address offset, bool is_store, Word value) {
  switch (offset) {
    case 0:  // epoch counter (hardware-exposed, §3.1.3 "Quarantine")
      return epoch_;
    case 4:  // control
      if (is_store && (value & 1)) {
        StartSweep();
      }
      return 0;
    case 8:  // status
      return sweeping_ ? 1 : 0;
    case 12:  // interrupt request
      if (is_store && (value & 1)) {
        irq_requested_ = true;
        if (!sweeping_) {
          StartSweep();
        }
      }
      return 0;
    default:
      return 0;
  }
}

void Revoker::StartSweep() {
  if (sweeping_) {
    // A sweep is already running; remember to run another one so that
    // objects freed after the in-flight sweep's scan point get covered.
    restart_requested_ = true;
    return;
  }
  sweeping_ = true;
  next_granule_ = 0;
  budget_ = 0;
  if (trace_ != nullptr) {
    trace_->OnSweepBegin(epoch_);
  }
}

Cycles Revoker::CyclesUntilDone() const {
  if (!sweeping_) {
    return 0;
  }
  const size_t remaining = memory_->GranuleCount() - next_granule_;
  return static_cast<Cycles>(remaining) * cost::kRevokerCyclesPerGranule;
}

void Revoker::AdvanceSweep(Cycles delta) {
  budget_ += delta;
  size_t granules = budget_ / cost::kRevokerCyclesPerGranule;
  budget_ -= granules * cost::kRevokerCyclesPerGranule;
  const size_t total = memory_->GranuleCount();
  // Word-skipping sweep: untagged granule runs are skipped with one bitmap
  // probe per 64 granules instead of being visited one at a time. The cycle
  // model is untouched — every skipped granule still consumes one granule of
  // budget, so next_granule_ advances exactly as the naive sweep's would and
  // epochs, CyclesUntilDone and completion-IRQ timing are bit-identical
  // (asserted by RevokerTest.SkippingSweepMatchesNaiveSweep and the
  // cycle-model-invariance harness).
  while (granules > 0 && next_granule_ < total) {
    size_t next_tagged = memory_->FindNextTaggedGranule(next_granule_);
    if (next_tagged == Bitmap::npos) {
      next_tagged = total;
    }
    const size_t untagged_run = next_tagged - next_granule_;
    if (untagged_run >= granules) {
      next_granule_ += granules;
      granules = 0;
      break;
    }
    next_granule_ = next_tagged;
    granules -= untagged_run;
    if (next_granule_ < total) {
      const Capability& cap = memory_->GranuleCap(next_granule_);
      if (memory_->revocation().Test(cap.base())) {
        memory_->ClearGranuleTag(next_granule_);
      }
      ++next_granule_;
      --granules;
    }
  }
  if (next_granule_ >= total) {
    ++epoch_;
    sweeping_ = false;
    if (trace_ != nullptr) {
      trace_->OnSweepEnd(epoch_, total);
    }
    if (irq_requested_) {
      irqs_->Raise(IrqLine::kRevoker);
      irq_requested_ = false;
    }
    if (restart_requested_) {
      restart_requested_ = false;
      StartSweep();
    }
  }
}

void Revoker::SerializeState(snap::Writer& w) const {
  w.Bool(sweeping_);
  w.Bool(restart_requested_);
  w.Bool(irq_requested_);
  w.U32(epoch_);
  w.U64(next_granule_);
  w.U64(budget_);
}

void Revoker::RestoreState(snap::Reader& r) {
  sweeping_ = r.Bool();
  restart_requested_ = r.Bool();
  irq_requested_ = r.Bool();
  epoch_ = r.U32();
  next_granule_ = r.U64();
  budget_ = r.U64();
}

}  // namespace cheriot

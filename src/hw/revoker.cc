#include "src/hw/revoker.h"

#include "src/base/costs.h"

namespace cheriot {

Word Revoker::Mmio(Address offset, bool is_store, Word value) {
  switch (offset) {
    case 0:  // epoch counter (hardware-exposed, §3.1.3 "Quarantine")
      return epoch_;
    case 4:  // control
      if (is_store && (value & 1)) {
        StartSweep();
      }
      return 0;
    case 8:  // status
      return sweeping_ ? 1 : 0;
    case 12:  // interrupt request
      if (is_store && (value & 1)) {
        irq_requested_ = true;
        if (!sweeping_) {
          StartSweep();
        }
      }
      return 0;
    default:
      return 0;
  }
}

void Revoker::StartSweep() {
  if (sweeping_) {
    // A sweep is already running; remember to run another one so that
    // objects freed after the in-flight sweep's scan point get covered.
    restart_requested_ = true;
    return;
  }
  sweeping_ = true;
  next_granule_ = 0;
  budget_ = 0;
}

Cycles Revoker::CyclesUntilDone() const {
  if (!sweeping_) {
    return 0;
  }
  const size_t remaining = memory_->GranuleCount() - next_granule_;
  return static_cast<Cycles>(remaining) * cost::kRevokerCyclesPerGranule;
}

void Revoker::Advance(Cycles delta) {
  if (!sweeping_) {
    return;
  }
  budget_ += delta;
  size_t granules = budget_ / cost::kRevokerCyclesPerGranule;
  budget_ -= granules * cost::kRevokerCyclesPerGranule;
  const size_t total = memory_->GranuleCount();
  while (granules > 0 && next_granule_ < total) {
    if (memory_->GranuleTagged(next_granule_)) {
      const Capability& cap = memory_->GranuleCap(next_granule_);
      if (memory_->revocation().Test(cap.base())) {
        memory_->ClearGranuleTag(next_granule_);
      }
    }
    ++next_granule_;
    --granules;
  }
  if (next_granule_ >= total) {
    ++epoch_;
    sweeping_ = false;
    if (irq_requested_) {
      irqs_->Raise(IrqLine::kRevoker);
      irq_requested_ = false;
    }
    if (restart_requested_) {
      restart_requested_ = false;
      StartSweep();
    }
  }
}

}  // namespace cheriot

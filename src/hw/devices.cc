#include "src/hw/devices.h"

#include <cstdio>

#include "src/snap/wire.h"

namespace cheriot {

Word Uart::Mmio(Address offset, bool is_store, Word value) {
  switch (offset) {
    case 0:  // TX data
      if (is_store) {
        output_.push_back(static_cast<char>(value & 0xFF));
        if (echo_) {
          std::fputc(static_cast<int>(value & 0xFF), stdout);
        }
      }
      return 0;
    case 4:  // status: TX always ready
      return 1;
    default:
      return 0;
  }
}

Word LedBank::Mmio(Address offset, bool is_store, Word value) {
  if (offset == 0) {
    if (is_store) {
      state_ = value;
      events_.push_back({clock_->now(), value});
    }
    return state_;
  }
  return 0;
}

Word Timer::Mmio(Address offset, bool is_store, Word value) {
  const Cycles now = clock_->now();
  switch (offset) {
    case 0:  // mtime low
      return static_cast<Word>(now);
    case 4:  // mtime high
      return static_cast<Word>(now >> 32);
    case 8:  // mtimecmp low
      if (is_store) {
        mtimecmp_ = (mtimecmp_ & ~0xFFFFFFFFull) | value;
        armed_ = true;
        irqs_->Clear(IrqLine::kTimer);
      }
      return static_cast<Word>(mtimecmp_);
    case 12:  // mtimecmp high
      if (is_store) {
        mtimecmp_ = (mtimecmp_ & 0xFFFFFFFFull) |
                    (static_cast<Cycles>(value) << 32);
        armed_ = true;
        irqs_->Clear(IrqLine::kTimer);
      }
      return static_cast<Word>(mtimecmp_ >> 32);
    default:
      return 0;
  }
}

Word EthernetDevice::Mmio(Address offset, bool is_store, Word value) {
  switch (offset) {
    case 0x00:  // RX status: pending frame count
      return static_cast<Word>(rx_.size());
    case 0x04:  // RX length: latch head frame for reading
      if (rx_.empty()) {
        return 0;
      }
      rx_latched_ = rx_.front();
      rx_read_pos_ = 0;
      return static_cast<Word>(rx_latched_.size());
    case 0x08: {  // RX data: stream latched frame, word at a time
      Word w = 0;
      for (int i = 0; i < 4 && rx_read_pos_ < rx_latched_.size();
           ++i, ++rx_read_pos_) {
        w |= static_cast<Word>(rx_latched_[rx_read_pos_]) << (8 * i);
      }
      return w;
    }
    case 0x0C:  // RX done: pop the frame
      if (is_store && !rx_.empty()) {
        rx_.pop_front();
        if (rx_.empty()) {
          irqs_->Clear(IrqLine::kEthernet);
        }
      }
      return 0;
    case 0x10:  // TX length: begin a frame
      if (is_store) {
        tx_building_.clear();
        tx_expected_ = value;
      }
      return 0;
    case 0x14:  // TX data: append a word
      if (is_store) {
        for (int i = 0; i < 4 && tx_building_.size() < tx_expected_; ++i) {
          tx_building_.push_back(static_cast<uint8_t>(value >> (8 * i)));
        }
      }
      return 0;
    case 0x18:  // TX done: commit
      if (is_store && on_transmit) {
        on_transmit(tx_building_);
        tx_building_.clear();
      }
      return 0;
    case 0x1C:  // MAC address, bytes 0-3 (read-only)
      return static_cast<Word>(mac_[0]) | (static_cast<Word>(mac_[1]) << 8) |
             (static_cast<Word>(mac_[2]) << 16) |
             (static_cast<Word>(mac_[3]) << 24);
    case 0x20:  // MAC address, bytes 4-5 (read-only)
      return static_cast<Word>(mac_[4]) | (static_cast<Word>(mac_[5]) << 8);
    default:
      return 0;
  }
}

void EthernetDevice::HostInject(Frame frame) {
  rx_.push_back(std::move(frame));
  irqs_->Raise(IrqLine::kEthernet);
}

Word EntropySource::Next() {
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
  return static_cast<Word>(state_);
}

Word EntropySource::Mmio(Address offset, bool is_store, Word value) {
  if (offset == 0 && !is_store) {
    return Next();
  }
  return 0;
}

// --- Snapshot (DESIGN.md §10) ---------------------------------------------

namespace {
void SerializeFrame(snap::Writer& w, const EthernetDevice::Frame& f) {
  w.U32(static_cast<uint32_t>(f.size()));
  w.Bytes(f.data(), f.size());
}
EthernetDevice::Frame RestoreFrame(snap::Reader& r) {
  EthernetDevice::Frame f(r.U32());
  r.BytesInto(f.data(), f.size());
  return f;
}
}  // namespace

void Uart::SerializeState(snap::Writer& w) const { w.Str(output_); }

void Uart::RestoreState(snap::Reader& r) { output_ = r.Str(); }

void LedBank::SerializeState(snap::Writer& w) const {
  w.U32(state_);
  w.U32(static_cast<uint32_t>(events_.size()));
  for (const Event& e : events_) {
    w.U64(e.at);
    w.U32(e.mask);
  }
}

void LedBank::RestoreState(snap::Reader& r) {
  state_ = r.U32();
  events_.resize(r.U32());
  for (Event& e : events_) {
    e.at = r.U64();
    e.mask = r.U32();
  }
}

void Timer::SerializeState(snap::Writer& w) const {
  w.U64(mtimecmp_);
  w.Bool(armed_);
}

void Timer::RestoreState(snap::Reader& r) {
  mtimecmp_ = r.U64();
  armed_ = r.Bool();
}

void EthernetDevice::SerializeState(snap::Writer& w) const {
  w.Bytes(mac_.data(), mac_.size());
  w.U32(static_cast<uint32_t>(rx_.size()));
  for (const Frame& f : rx_) {
    SerializeFrame(w, f);
  }
  SerializeFrame(w, rx_latched_);
  w.U64(rx_read_pos_);
  SerializeFrame(w, tx_building_);
  w.U64(tx_expected_);
}

void EthernetDevice::RestoreState(snap::Reader& r) {
  r.BytesInto(mac_.data(), mac_.size());
  rx_.clear();
  const uint32_t pending = r.U32();
  for (uint32_t i = 0; i < pending; ++i) {
    rx_.push_back(RestoreFrame(r));
  }
  rx_latched_ = RestoreFrame(r);
  rx_read_pos_ = r.U64();
  tx_building_ = RestoreFrame(r);
  tx_expected_ = r.U64();
}

void EntropySource::SerializeState(snap::Writer& w) const { w.U64(state_); }

void EntropySource::RestoreState(snap::Reader& r) { state_ = r.U64(); }

}  // namespace cheriot

// The simulated SoC: core clock, SRAM, interrupt controller and the device
// complement of the evaluation platform (Arty A7 @33 MHz with 256 KiB SRAM
// and a simple network adaptor, §5.3).
#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/clock.h"
#include "src/base/costs.h"
#include "src/base/types.h"
#include "src/hw/devices.h"
#include "src/hw/revoker.h"
#include "src/mem/memory.h"

namespace cheriot {

namespace trace {
class TraceRecorder;
}  // namespace trace

namespace health {
class ForensicsRecorder;
}  // namespace health

namespace cov {
class CovRecorder;
}  // namespace cov

struct MachineConfig {
  Address sram_base = 0x20000000;
  Address sram_size = 256 * 1024;  // evaluation board SRAM (§5.3)
  bool uart_echo = false;
};

class Machine {
 public:
  // Components may publish the absolute cycle of their next pending event so
  // the idle loop can skip time deterministically.
  using NextEventFn = std::function<std::optional<Cycles>()>;

  explicit Machine(const MachineConfig& config = {});

  CycleClock& clock() { return clock_; }
  Memory& memory() { return memory_; }
  InterruptController& irqs() { return irqs_; }
  Uart& uart() { return uart_; }
  LedBank& leds() { return leds_; }
  Timer& timer() { return timer_; }
  Revoker& revoker() { return revoker_; }
  EthernetDevice& ethernet() { return ethernet_; }
  EntropySource& entropy() { return entropy_; }
  const MachineConfig& config() const { return config_; }

  // Advances simulated time (CPU executing); background hooks (revoker,
  // timer, registered world models) run in lock-step.
  void Tick(Cycles n) { clock_.Tick(n); }

  // Skips the clock forward while the CPU is idle: advances to the earliest
  // of the timer deadline, revoker completion and any registered next-event
  // source, bounded by max_skip. Returns the cycles skipped (0 if an IRQ is
  // already pending). With `ignore_timer` the armed timer does not bound the
  // skip — used by the kernel's idle fast-forward, which treats its own
  // quantum timer as noise (the caller must bound the skip by any genuine
  // scheduler deadline itself); the timer interrupt still pends when the
  // jump crosses the deadline and is delivered at the jump target.
  Cycles AdvanceIdle(Cycles max_skip, bool ignore_timer = false);

  // Earliest pending hardware event ignoring the CPU-armed timer: revoker
  // sweep completion or any registered next-event source. nullopt when no
  // such event is scheduled. The idle fast-forward bound.
  std::optional<Cycles> NextHardwareEvent() const;

  void AddNextEventSource(NextEventFn fn) {
    next_event_sources_.push_back(std::move(fn));
  }

  // Flight recorder (src/trace). Null when tracing is off — every emit site
  // is a raw-pointer null check, so the off path costs one predictable
  // branch. Set via trace::Attach(); also published to devices that emit
  // events of their own (revoker).
  trace::TraceRecorder* trace() const { return trace_; }
  void set_trace(trace::TraceRecorder* recorder) {
    trace_ = recorder;
    revoker_.set_trace(recorder);
  }

  // Crash forensics recorder (src/health). Null when forensics is off; the
  // same zero-cost-when-off rule as trace() — every capture site in the
  // switcher, kernel and allocator is a raw-pointer null check. Set via
  // health::Attach().
  health::ForensicsRecorder* forensics() const { return forensics_; }
  void set_forensics(health::ForensicsRecorder* recorder) {
    forensics_ = recorder;
  }

  // Authority-coverage recorder (src/cov). Null when coverage is off; same
  // zero-cost-when-off rule as trace()/forensics() — every capture site is a
  // raw-pointer null check. Set via cov::Attach(), which also installs the
  // memory's MMIO observer.
  cov::CovRecorder* cov() const { return cov_; }
  void set_cov(cov::CovRecorder* recorder) { cov_ = recorder; }

  // True if any hardware activity is scheduled for the future (armed timer,
  // in-flight revocation sweep, pending world events).
  bool HasFutureEvent() const;
  // Same, but ignores the CPU-armed timer (used for deadlock detection).
  bool HasFutureEventIgnoringTimer() const;

  // Snapshot restore support (DESIGN.md §10): re-seats every raw pointer
  // this machine hands out to its own components — the PR 1 raw clock hook
  // (revoker + timer background work) and the device-side trace pointer.
  // Guest state is serialised per-component by the Board (clock, SRAM/tags/
  // revocation, IRQ lines, devices, revoker); host handles (MMIO closures,
  // this hook, next-event sources) are never serialised — they are rebound
  // here so nothing dangles into the machine the snapshot was taken from.
  // Idempotent; asserted by tests via CycleClock::raw_hook_ctx().
  void RebindHostHandles();

 private:
  MachineConfig config_;
  CycleClock clock_;
  Memory memory_;
  InterruptController irqs_;
  Uart uart_;
  LedBank leds_;
  Timer timer_;
  Revoker revoker_;
  EthernetDevice ethernet_;
  EntropySource entropy_;
  trace::TraceRecorder* trace_ = nullptr;
  health::ForensicsRecorder* forensics_ = nullptr;
  cov::CovRecorder* cov_ = nullptr;
  std::vector<NextEventFn> next_event_sources_;
};

}  // namespace cheriot

#endif  // SRC_HW_MACHINE_H_

// MMIO device models: UART, LED bank, timer, Ethernet adaptor, entropy
// source. Each device exposes a register bank through Memory::AddMmioRegion;
// compartments reach devices only through MMIO capabilities placed in their
// import tables by the loader (§3.1.1, footnote 2).
#ifndef SRC_HW_DEVICES_H_
#define SRC_HW_DEVICES_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/types.h"

namespace cheriot {

namespace snap {
class Writer;
class Reader;
}  // namespace snap

// Fixed MMIO map of the simulated SoC.
inline constexpr Address kUartMmioBase = 0x10000000;
inline constexpr Address kLedMmioBase = 0x10001000;
inline constexpr Address kTimerMmioBase = 0x10002000;
inline constexpr Address kRevokerMmioBase = 0x10003000;
inline constexpr Address kEthernetMmioBase = 0x10004000;
inline constexpr Address kEntropyMmioBase = 0x10005000;
inline constexpr Address kMmioRegionSize = 0x100;

// Interrupt lines of the simulated interrupt controller.
enum class IrqLine : uint32_t {
  kTimer = 0,
  kRevoker = 1,
  kEthernet = 2,
  kUart = 3,
  kCount = 4,
};

class InterruptController {
 public:
  void Raise(IrqLine line) { pending_ |= 1u << static_cast<uint32_t>(line); }
  void Clear(IrqLine line) { pending_ &= ~(1u << static_cast<uint32_t>(line)); }
  bool Pending(IrqLine line) const {
    return (pending_ >> static_cast<uint32_t>(line)) & 1u;
  }
  bool AnyPending() const { return pending_ != 0; }
  uint32_t pending_mask() const { return pending_; }
  // Snapshot restore only (DESIGN.md §10).
  void RestorePendingMask(uint32_t mask) { pending_ = mask; }

 private:
  uint32_t pending_ = 0;
};

// Transmit-only console; register 0 = TX data, register 4 = status (always
// ready).
class Uart {
 public:
  Word Mmio(Address offset, bool is_store, Word value);
  const std::string& output() const { return output_; }
  void set_echo(bool echo) { echo_ = echo; }
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  std::string output_;
  bool echo_ = false;
};

// GPIO LED bank; register 0 = LED bitmask. Records every change with its
// timestamp so the IoT case study can assert "the LEDs flashed".
class LedBank {
 public:
  struct Event {
    Cycles at;
    Word mask;
  };

  explicit LedBank(CycleClock* clock) : clock_(clock) {}
  Word Mmio(Address offset, bool is_store, Word value);
  Word state() const { return state_; }
  const std::vector<Event>& events() const { return events_; }
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  CycleClock* clock_;
  Word state_ = 0;
  std::vector<Event> events_;
};

// RISC-V style timer: mtime (read-only, derived from the cycle clock) and
// mtimecmp. Raises IrqLine::kTimer when mtime >= mtimecmp.
class Timer {
 public:
  Timer(CycleClock* clock, InterruptController* irqs)
      : clock_(clock), irqs_(irqs) {}
  Word Mmio(Address offset, bool is_store, Word value);
  // Tick hook: checks the compare register. Inline — it runs on every
  // simulated access via the clock's background hook.
  void Poll() {
    if (armed_ && clock_->now() >= mtimecmp_) {
      irqs_->Raise(IrqLine::kTimer);
      armed_ = false;
    }
  }
  void SetDeadline(Cycles absolute) {
    mtimecmp_ = absolute;
    armed_ = true;
  }
  Cycles deadline() const { return mtimecmp_; }
  bool armed() const { return armed_; }
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  CycleClock* clock_;
  InterruptController* irqs_;
  Cycles mtimecmp_ = ~0ull;
  bool armed_ = false;
};

// Simple no-offload network adaptor (§5.3.3 uses "a simple network adaptor
// with no offload features"). Frames move word-at-a-time through MMIO. The
// adaptor carries a factory-programmed MAC address, readable through two
// MMIO registers so the guest stack learns its own identity (fleet boards
// each get a distinct one; the default matches the historical single-board
// address 02:00:00:00:00:02).
class EthernetDevice {
 public:
  using Frame = std::vector<uint8_t>;
  using Mac = std::array<uint8_t, 6>;

  explicit EthernetDevice(InterruptController* irqs) : irqs_(irqs) {}

  Word Mmio(Address offset, bool is_store, Word value);

  // Host/world side: deliver a frame into the RX queue (raises the IRQ).
  void HostInject(Frame frame);
  // Host/world side: called for each committed TX frame.
  std::function<void(Frame)> on_transmit;

  size_t rx_pending() const { return rx_.size(); }

  // Board-bringup side: program the adaptor's MAC before boot.
  void set_mac(const Mac& mac) { mac_ = mac; }
  const Mac& mac() const { return mac_; }

  // Snapshot save/restore (DESIGN.md §10): RX/TX queues and latch state are
  // guest-visible; the on_transmit callback is a host handle the owning
  // Board re-wires itself.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  InterruptController* irqs_;
  std::deque<Frame> rx_;
  Frame rx_latched_;
  size_t rx_read_pos_ = 0;
  Frame tx_building_;
  size_t tx_expected_ = 0;
  Mac mac_ = {2, 0, 0, 0, 0, 2};
};

// Deterministic xorshift entropy source.
class EntropySource {
 public:
  explicit EntropySource(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed) {}
  Word Mmio(Address offset, bool is_store, Word value);
  Word Next();
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  uint64_t state_;
};

}  // namespace cheriot

#endif  // SRC_HW_DEVICES_H_

// Firmware image description: the build-time artefact consumed by the loader
// and by the auditing pipeline (§3.1.1, §4).
//
// In the real system this information is produced by compiler annotations
// (__cheri_compartment, entry-point attributes) and the linker; here an
// ImageBuilder plays that role. The static isolation model (P4) lives in
// these structures: compartments, threads, exports, imports, MMIO grants,
// allocation capabilities and static sealed objects are all fixed before
// boot, which is what makes the firmware auditable.
#ifndef SRC_FIRMWARE_IMAGE_H_
#define SRC_FIRMWARE_IMAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/cap/capability.h"
#include "src/mem/trap.h"
#include "src/switcher/registers.h"

namespace cheriot {

class CompartmentCtx;

// A compartment entry point. Entry points are the only way control enters a
// compartment (checked entry points, §3.2.5). The return value lands in a0;
// use StatusCap/WordCap helpers for plain integers.
using EntryFn =
    std::function<Capability(CompartmentCtx&, const std::vector<Capability>&)>;

inline Capability WordCap(Word w) { return Capability::FromWord(w); }
inline Capability StatusCap(Status s) {
  return Capability::FromWord(static_cast<Word>(static_cast<int32_t>(s)));
}

// Interrupt posture adopted when an entry point is invoked (§2.1 "More
// expressive sealing": sentries carry interrupt semantics; functions are
// annotated with their desired posture).
enum class InterruptPosture : uint8_t {
  kInherited = 0,
  kEnabled = 1,
  kDisabled = 2,
};

// What a compartment error handler instructs the switcher to do (§3.2.6).
enum class ErrorRecovery : uint8_t {
  kForceUnwind = 0,     // unwind the thread into the caller compartment
  kInstallContext = 1,  // resume with the (modified) register file
};

// Delivered to global error handlers.
struct TrapInfo {
  TrapCode cause = TrapCode::kNone;
  Address fault_address = 0;
  RegisterFile regs;  // mutable copy; a0 is consulted on kInstallContext
};

using ErrorHandlerFn = std::function<ErrorRecovery(CompartmentCtx&, TrapInfo&)>;

struct ExportDef {
  std::string name;
  EntryFn fn;
  // Minimum stack the callee requires; the switcher rejects calls with less
  // available (defends against stack-exhaustion interface attacks, §3.2.5).
  uint32_t min_stack_bytes = 256;
  uint8_t arg_registers = 6;
  InterruptPosture posture = InterruptPosture::kEnabled;
};

struct MmioImportDef {
  std::string device;  // symbolic name for auditing ("uart", "ethernet", ...)
  Address base = 0;
  Address size = 0;
  bool writeable = true;
};

// An allocation capability: the static opaque object embodying the right to
// allocate heap memory against a quota (§3.2.2).
struct AllocationCapabilityDef {
  std::string name;
  uint32_t quota_bytes = 0;
};

// A generic static sealed object instantiated by the loader (§3.2.1).
struct StaticSealedObjectDef {
  std::string name;
  std::string sealing_type;  // virtual sealing type, owned by some compartment
  std::vector<uint8_t> payload;
};

struct CompartmentDef {
  std::string name;
  // Modelled code+rodata footprint in bytes (Table 2; see EXPERIMENTS.md for
  // how code sizes are accounted). Data sizes are measured from the layout.
  uint32_t code_size = 1024;
  uint32_t wrapper_code_size = 0;  // share of code_size that is wrapper code
  uint32_t globals_size = 64;
  std::vector<ExportDef> exports;
  // Imports, by qualified name "compartment.export" / "library.export".
  std::vector<std::string> compartment_imports;
  std::vector<std::string> library_imports;
  std::vector<MmioImportDef> mmio_imports;
  std::vector<AllocationCapabilityDef> alloc_caps;
  std::vector<StaticSealedObjectDef> sealed_objects;
  // Virtual sealing types whose (un)sealing keys this compartment receives.
  std::vector<std::string> sealing_types_owned;
  ErrorHandlerFn error_handler;  // optional global handler (§3.2.6)
  // Factory for the compartment's native state object (the model analog of
  // compartment globals; micro-reboot re-creates it from scratch, the
  // "compile-time snapshot" of §3.2.6 step 4).
  std::function<std::shared_ptr<void>()> state_factory;
};

// A shared library: code without a security context; executes in the
// caller's compartment and must have no mutable globals (§3).
struct LibraryDef {
  std::string name;
  uint32_t code_size = 512;
  std::vector<ExportDef> exports;
};

struct ThreadDef {
  std::string name;
  uint16_t priority = 1;  // higher value = higher priority
  uint32_t stack_size = 1024;
  uint16_t trusted_stack_frames = 4;
  std::string entry;  // "compartment.export"
};

struct FirmwareImage {
  std::string name;
  std::vector<CompartmentDef> compartments;
  std::vector<LibraryDef> libraries;
  std::vector<ThreadDef> threads;
};

// Fluent builder; plays the role of the CHERIoT compiler+linker front half.
class CompartmentBuilder;
class LibraryBuilder;

class ImageBuilder {
 public:
  explicit ImageBuilder(std::string name) { image_.name = std::move(name); }

  CompartmentBuilder Compartment(const std::string& name);
  LibraryBuilder Library(const std::string& name);
  ImageBuilder& Thread(const std::string& name, uint16_t priority,
                       uint32_t stack_size, uint16_t trusted_stack_frames,
                       const std::string& entry);
  FirmwareImage Build() const { return image_; }

  CompartmentDef* FindCompartment(const std::string& name);
  LibraryDef* FindLibrary(const std::string& name);

 private:
  friend class CompartmentBuilder;
  friend class LibraryBuilder;
  FirmwareImage image_;
};

class CompartmentBuilder {
 public:
  CompartmentBuilder(ImageBuilder* owner, size_t index)
      : owner_(owner), index_(index) {}

  CompartmentBuilder& CodeSize(uint32_t bytes, uint32_t wrapper_bytes = 0);
  CompartmentBuilder& Globals(uint32_t bytes);
  CompartmentBuilder& Export(const std::string& name, EntryFn fn,
                             uint32_t min_stack_bytes = 256,
                             InterruptPosture posture = InterruptPosture::kEnabled);
  CompartmentBuilder& ImportCompartment(const std::string& qualified);
  CompartmentBuilder& ImportLibrary(const std::string& qualified);
  CompartmentBuilder& ImportMmio(const std::string& device, Address base,
                                 Address size, bool writeable = true);
  CompartmentBuilder& AllocCap(const std::string& name, uint32_t quota_bytes);
  CompartmentBuilder& SealedObject(const std::string& name,
                                   const std::string& sealing_type,
                                   std::vector<uint8_t> payload);
  CompartmentBuilder& OwnSealingType(const std::string& type_name);
  CompartmentBuilder& ErrorHandler(ErrorHandlerFn handler);
  CompartmentBuilder& State(std::function<std::shared_ptr<void>()> factory);

 private:
  CompartmentDef& def() { return owner_->image_.compartments[index_]; }
  ImageBuilder* owner_;
  size_t index_;
};

class LibraryBuilder {
 public:
  LibraryBuilder(ImageBuilder* owner, size_t index)
      : owner_(owner), index_(index) {}
  LibraryBuilder& CodeSize(uint32_t bytes);
  LibraryBuilder& Export(const std::string& name, EntryFn fn,
                         uint32_t min_stack_bytes = 128,
                         InterruptPosture posture = InterruptPosture::kInherited);

 private:
  LibraryDef& def() { return owner_->image_.libraries[index_]; }
  ImageBuilder* owner_;
  size_t index_;
};

}  // namespace cheriot

#endif  // SRC_FIRMWARE_IMAGE_H_

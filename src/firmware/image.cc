#include "src/firmware/image.h"

#include <stdexcept>

namespace cheriot {

CompartmentBuilder ImageBuilder::Compartment(const std::string& name) {
  for (size_t i = 0; i < image_.compartments.size(); ++i) {
    if (image_.compartments[i].name == name) {
      return CompartmentBuilder(this, i);
    }
  }
  CompartmentDef def;
  def.name = name;
  image_.compartments.push_back(std::move(def));
  return CompartmentBuilder(this, image_.compartments.size() - 1);
}

LibraryBuilder ImageBuilder::Library(const std::string& name) {
  for (size_t i = 0; i < image_.libraries.size(); ++i) {
    if (image_.libraries[i].name == name) {
      return LibraryBuilder(this, i);
    }
  }
  LibraryDef def;
  def.name = name;
  image_.libraries.push_back(std::move(def));
  return LibraryBuilder(this, image_.libraries.size() - 1);
}

ImageBuilder& ImageBuilder::Thread(const std::string& name, uint16_t priority,
                                   uint32_t stack_size,
                                   uint16_t trusted_stack_frames,
                                   const std::string& entry) {
  ThreadDef def;
  def.name = name;
  def.priority = priority;
  def.stack_size = stack_size;
  def.trusted_stack_frames = trusted_stack_frames;
  def.entry = entry;
  image_.threads.push_back(std::move(def));
  return *this;
}

CompartmentDef* ImageBuilder::FindCompartment(const std::string& name) {
  for (auto& c : image_.compartments) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

LibraryDef* ImageBuilder::FindLibrary(const std::string& name) {
  for (auto& l : image_.libraries) {
    if (l.name == name) {
      return &l;
    }
  }
  return nullptr;
}

CompartmentBuilder& CompartmentBuilder::CodeSize(uint32_t bytes,
                                                 uint32_t wrapper_bytes) {
  def().code_size = bytes;
  def().wrapper_code_size = wrapper_bytes;
  return *this;
}
CompartmentBuilder& CompartmentBuilder::Globals(uint32_t bytes) {
  def().globals_size = bytes;
  return *this;
}
CompartmentBuilder& CompartmentBuilder::Export(const std::string& name,
                                               EntryFn fn,
                                               uint32_t min_stack_bytes,
                                               InterruptPosture posture) {
  for (const auto& e : def().exports) {
    if (e.name == name) {
      throw std::invalid_argument("duplicate export: " + name);
    }
  }
  def().exports.push_back({name, std::move(fn), min_stack_bytes, 6, posture});
  return *this;
}
CompartmentBuilder& CompartmentBuilder::ImportCompartment(
    const std::string& qualified) {
  def().compartment_imports.push_back(qualified);
  return *this;
}
CompartmentBuilder& CompartmentBuilder::ImportLibrary(
    const std::string& qualified) {
  def().library_imports.push_back(qualified);
  return *this;
}
CompartmentBuilder& CompartmentBuilder::ImportMmio(const std::string& device,
                                                   Address base, Address size,
                                                   bool writeable) {
  def().mmio_imports.push_back({device, base, size, writeable});
  return *this;
}
CompartmentBuilder& CompartmentBuilder::AllocCap(const std::string& name,
                                                 uint32_t quota_bytes) {
  def().alloc_caps.push_back({name, quota_bytes});
  return *this;
}
CompartmentBuilder& CompartmentBuilder::SealedObject(
    const std::string& name, const std::string& sealing_type,
    std::vector<uint8_t> payload) {
  def().sealed_objects.push_back({name, sealing_type, std::move(payload)});
  return *this;
}
CompartmentBuilder& CompartmentBuilder::OwnSealingType(
    const std::string& type_name) {
  def().sealing_types_owned.push_back(type_name);
  return *this;
}
CompartmentBuilder& CompartmentBuilder::ErrorHandler(ErrorHandlerFn handler) {
  def().error_handler = std::move(handler);
  return *this;
}
CompartmentBuilder& CompartmentBuilder::State(
    std::function<std::shared_ptr<void>()> factory) {
  def().state_factory = std::move(factory);
  return *this;
}

LibraryBuilder& LibraryBuilder::CodeSize(uint32_t bytes) {
  def().code_size = bytes;
  return *this;
}
LibraryBuilder& LibraryBuilder::Export(const std::string& name, EntryFn fn,
                                       uint32_t min_stack_bytes,
                                       InterruptPosture posture) {
  def().exports.push_back({name, std::move(fn), min_stack_bytes, 6, posture});
  return *this;
}

}  // namespace cheriot

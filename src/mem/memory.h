// The simulated SRAM with CHERI tags, the revocation-bit SRAM and the load
// filter (§2.1), plus the MMIO bus.
//
// Every guest access goes through a capability and is checked here: tag,
// seal, permission, bounds, alignment. Capability loads additionally apply
// CHERIoT's deep attenuation (permit-load-mutable / permit-load-global) and
// the load filter against the revocation bits. Partially overwriting a
// capability in memory clears its tag.
#ifndef SRC_MEM_MEMORY_H_
#define SRC_MEM_MEMORY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/types.h"
#include "src/cap/capability.h"
#include "src/mem/trap.h"

namespace cheriot {

// Tracks the revocation bit for each heap granule (stored in a dedicated
// SRAM region on the real chip, §2.1).
class RevocationMap {
 public:
  RevocationMap(Address base, Address size)
      : base_(base), bits_((size + kGranuleBytes - 1) / kGranuleBytes, false) {}

  bool Covers(Address addr) const {
    return addr >= base_ && (addr - base_) / kGranuleBytes < bits_.size();
  }
  bool Test(Address addr) const {
    return Covers(addr) && bits_[(addr - base_) / kGranuleBytes];
  }
  void SetRange(Address addr, Address len, bool value) {
    for (Address a = AlignDown(addr, kGranuleBytes); a < addr + len;
         a += kGranuleBytes) {
      if (Covers(a)) {
        bits_[(a - base_) / kGranuleBytes] = value;
      }
    }
  }

 private:
  Address base_;
  std::vector<bool> bits_;
};

// An MMIO device register bank. `is_store` distinguishes reads from writes;
// reads return the register value.
using MmioHandler = std::function<Word(Address offset, bool is_store, Word value)>;

class Memory {
 public:
  // Called before every guest-visible access; the kernel installs the
  // preemption check here (deterministic preemption points, DESIGN.md §4.3).
  using AccessHook = std::function<void()>;

  Memory(Address sram_base, Address sram_size, CycleClock* clock);

  Address sram_base() const { return sram_base_; }
  Address sram_size() const { return sram_size_; }
  Address sram_top() const { return sram_base_ + sram_size_; }
  RevocationMap& revocation() { return revocation_; }
  CycleClock& clock() { return *clock_; }

  void SetAccessHook(AccessHook hook) { access_hook_ = std::move(hook); }

  // --- Guest (capability-checked) accesses ---
  Word LoadWord(const Capability& authority, Address addr);
  void StoreWord(const Capability& authority, Address addr, Word value);
  uint8_t LoadByte(const Capability& authority, Address addr);
  void StoreByte(const Capability& authority, Address addr, uint8_t value);
  uint16_t LoadHalf(const Capability& authority, Address addr);
  void StoreHalf(const Capability& authority, Address addr, uint16_t value);
  Capability LoadCap(const Capability& authority, Address addr);
  void StoreCap(const Capability& authority, Address addr,
                const Capability& value);

  // Bulk helpers (checked once, then byte-costed).
  void ReadBytes(const Capability& authority, Address addr, void* out,
                 Address len);
  void WriteBytes(const Capability& authority, Address addr, const void* in,
                  Address len);
  // Zeroes [addr, addr+len), clearing capability tags; costs
  // cost::kZeroPerGranule per granule (the switcher's stack-clearing cost).
  void ZeroRange(const Capability& authority, Address addr, Address len);

  // --- MMIO ---
  void AddMmioRegion(Address base, Address size, MmioHandler handler);
  bool IsMmio(Address addr) const;

  // --- Hardware-internal (uncosted, unchecked) access ---
  // Used by the revoker sweep, the loader's metadata bookkeeping and tests'
  // white-box assertions. Not reachable from guest code.
  uint8_t* raw(Address addr);
  Word RawLoadWord(Address addr) const;
  void RawStoreWord(Address addr, Word value);
  size_t GranuleCount() const { return tags_.size(); }
  bool GranuleTagged(size_t index) const { return tags_[index]; }
  const Capability& GranuleCap(size_t index) const { return shadow_[index]; }
  void ClearGranuleTag(size_t index) { tags_[index] = false; }
  bool TagAt(Address addr) const;

  // Statistics for the ablation bench (bench_cap_overhead).
  uint64_t access_count() const { return access_count_; }
  uint64_t cap_load_count() const { return cap_loads_; }
  uint64_t cap_store_count() const { return cap_stores_; }
  void ResetAccessCounters() {
    access_count_ = 0;
    cap_loads_ = 0;
    cap_stores_ = 0;
  }
  // When false, capability checks are skipped (models the baseline RV32E
  // core for the CoreMark-style ablation). Protection-relevant code must
  // never run in this mode.
  void set_checks_enabled(bool enabled) { checks_enabled_ = enabled; }

 private:
  struct MmioRegion {
    Address base;
    Address size;
    MmioHandler handler;
  };

  void CheckDataAccess(const Capability& authority, Address addr, Address size,
                       Permission perm) const;
  // Index of the granule containing addr (SRAM only).
  size_t GranuleIndex(Address addr) const {
    return (addr - sram_base_) / kGranuleBytes;
  }
  void ClearTagsCovering(Address addr, Address len);
  MmioRegion* FindMmio(Address addr, Address size);
  void HookAndTick(Cycles cycles);

  Address sram_base_;
  Address sram_size_;
  CycleClock* clock_;
  std::vector<uint8_t> bytes_;
  std::vector<bool> tags_;          // one per granule
  std::vector<Capability> shadow_;  // full capability per tagged granule
  RevocationMap revocation_;
  std::vector<MmioRegion> mmio_;
  AccessHook access_hook_;
  uint64_t access_count_ = 0;
  uint64_t cap_loads_ = 0;
  uint64_t cap_stores_ = 0;
  bool checks_enabled_ = true;
};

}  // namespace cheriot

#endif  // SRC_MEM_MEMORY_H_

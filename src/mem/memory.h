// The simulated SRAM with CHERI tags, the revocation-bit SRAM and the load
// filter (§2.1), plus the MMIO bus.
//
// Every guest access goes through a capability and is checked here: tag,
// seal, permission, bounds, alignment. Capability loads additionally apply
// CHERIoT's deep attenuation (permit-load-mutable / permit-load-global) and
// the load filter against the revocation bits. Partially overwriting a
// capability in memory clears its tag.
//
// Because every protection property is enforced on every simulated access,
// this is the simulator's hottest code. The scalar load/store paths run
// through the inlined AccessFastPath below: raw-function-pointer preemption
// hook, word-packed tag/revocation bitmaps (src/base/bitmap.h), and a cached
// [mmio_min, mmio_max) envelope so the common SRAM access never scans the
// MMIO table. The cycle-model-invariance rule (DESIGN.md "Simulator fast
// path") applies: simulated cycles, counters and trap behaviour here are
// pinned by tests/invariance_test.cpp.
#ifndef SRC_MEM_MEMORY_H_
#define SRC_MEM_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/clock.h"
#include "src/base/costs.h"
#include "src/base/types.h"
#include "src/cap/capability.h"
#include "src/mem/trap.h"

namespace cheriot {

namespace snap {
class Writer;
class Reader;
}  // namespace snap

// Tracks the revocation bit for each heap granule (stored in a dedicated
// SRAM region on the real chip, §2.1). Word-packed so the load filter probes
// one bit and free()/heap_free_all mark 64 granules per store.
class RevocationMap {
 public:
  RevocationMap(Address base, Address size)
      : base_(base), bits_((size + kGranuleBytes - 1) / kGranuleBytes) {}

  bool Covers(Address addr) const {
    return addr >= base_ && (addr - base_) / kGranuleBytes < bits_.size();
  }
  bool Test(Address addr) const {
    return Covers(addr) && bits_.Test((addr - base_) / kGranuleBytes);
  }
  // Marks the granules covering [addr, addr + len). The end is computed once
  // in 64 bits and clamped to the top of the map, so a length that would
  // overflow a 32-bit address cannot wrap around and escape the range.
  void SetRange(Address addr, Address len, bool value) {
    const uint64_t top =
        base_ + static_cast<uint64_t>(bits_.size()) * kGranuleBytes;
    uint64_t end = static_cast<uint64_t>(addr) + len;
    if (end > top) {
      end = top;
    }
    uint64_t start = AlignDown(addr, kGranuleBytes);
    if (start < base_) {
      start = base_;
    }
    if (start >= end) {
      return;
    }
    bits_.SetRange(static_cast<size_t>((start - base_) / kGranuleBytes),
                   static_cast<size_t>((end - start + kGranuleBytes - 1) /
                                       kGranuleBytes),
                   value);
  }

  // Snapshot save/restore of the packed revocation words (DESIGN.md §10).
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  Address base_;
  Bitmap bits_;
};

// An MMIO device register bank. `is_store` distinguishes reads from writes;
// reads return the register value. Handler dispatch is off the fast path, so
// std::function is fine here; regions must not overlap.
using MmioHandler = std::function<Word(Address offset, bool is_store, Word value)>;

class Memory {
 public:
  // Called before every guest-visible access; the kernel installs the
  // preemption check here (deterministic preemption points, DESIGN.md §4.3).
  // A raw function pointer + context — not std::function — so the hot loop
  // pays one indirect call, with the exact same call sequence and therefore
  // identical preemption points.
  using AccessHook = void (*)(void* ctx);

  // Passive observer of every guest-visible data access, used by the
  // concurrency explorer (src/mc) to harvest per-thread read/write
  // footprints for partial-order reduction. Same raw-pointer shape as
  // AccessHook; invoked after the preemption hook, before the checks.
  // Must not perturb guest-visible state (it sees the access, it does not
  // cost or count it).
  using AccessObserver = void (*)(void* ctx, Address addr, Address size,
                                  bool is_store);

  // Passive observer of MMIO dispatches only, used by the authority-coverage
  // recorder (src/cov) to record which device granules each compartment
  // touches. Invoked on the slow (device-window) path right before the
  // handler runs, so the SRAM fast path never sees it. Same rules as
  // AccessObserver: must not perturb guest-visible state.
  using MmioObserver = void (*)(void* ctx, Address addr, Address size,
                                bool is_store);

  Memory(Address sram_base, Address sram_size, CycleClock* clock);

  Address sram_base() const { return sram_base_; }
  Address sram_size() const { return sram_size_; }
  Address sram_top() const { return sram_base_ + sram_size_; }
  RevocationMap& revocation() { return revocation_; }
  CycleClock& clock() { return *clock_; }

  void SetAccessHook(AccessHook hook, void* ctx) {
    access_hook_ = hook;
    access_hook_ctx_ = ctx;
  }

  void SetAccessObserver(AccessObserver observer, void* ctx) {
    access_observer_ = observer;
    access_observer_ctx_ = ctx;
  }

  void SetMmioObserver(MmioObserver observer, void* ctx) {
    mmio_observer_ = observer;
    mmio_observer_ctx_ = ctx;
  }

  // --- Guest (capability-checked) accesses ---
  // The scalar paths are defined inline at the bottom of this header; they
  // all run through AccessFastPath.
  [[gnu::always_inline]] inline Word LoadWord(const Capability& authority,
                                              Address addr);
  [[gnu::always_inline]] inline void StoreWord(const Capability& authority,
                                               Address addr, Word value);
  [[gnu::always_inline]] inline uint8_t LoadByte(const Capability& authority,
                                                 Address addr);
  [[gnu::always_inline]] inline void StoreByte(const Capability& authority,
                                               Address addr, uint8_t value);
  [[gnu::always_inline]] inline uint16_t LoadHalf(const Capability& authority,
                                                  Address addr);
  [[gnu::always_inline]] inline void StoreHalf(const Capability& authority,
                                               Address addr, uint16_t value);
  Capability LoadCap(const Capability& authority, Address addr);
  void StoreCap(const Capability& authority, Address addr,
                const Capability& value);

  // Bulk helpers (checked once, then byte-costed).
  void ReadBytes(const Capability& authority, Address addr, void* out,
                 Address len);
  void WriteBytes(const Capability& authority, Address addr, const void* in,
                  Address len);
  // Zeroes [addr, addr+len), clearing capability tags; costs
  // cost::kZeroPerGranule per granule (the switcher's stack-clearing cost).
  void ZeroRange(const Capability& authority, Address addr, Address len);

  // --- MMIO ---
  // Regions are kept sorted by base for O(log n) dispatch and must not
  // overlap each other.
  void AddMmioRegion(Address base, Address size, MmioHandler handler);
  bool IsMmio(Address addr) const;

  // --- Hardware-internal (uncosted, unchecked) access ---
  // Used by the revoker sweep, the loader's metadata bookkeeping and tests'
  // white-box assertions. Not reachable from guest code.
  uint8_t* raw(Address addr);
  Word RawLoadWord(Address addr) const;
  void RawStoreWord(Address addr, Word value);
  size_t GranuleCount() const { return tags_.size(); }
  bool GranuleTagged(size_t index) const { return tags_.Test(index); }
  const Capability& GranuleCap(size_t index) const { return shadow_[index]; }
  void ClearGranuleTag(size_t index) { tags_.Clear(index); }
  // Index of the first tagged granule at or after `from` (Bitmap::npos if
  // none) — lets the revoker sweep skip untagged runs 64 granules at a time.
  size_t FindNextTaggedGranule(size_t from) const {
    return tags_.FindNextSet(from);
  }
  bool TagAt(Address addr) const;

  // Statistics for the ablation bench (bench_cap_overhead).
  uint64_t access_count() const { return access_count_; }
  uint64_t cap_load_count() const { return cap_loads_; }
  uint64_t cap_store_count() const { return cap_stores_; }
  void ResetAccessCounters() {
    access_count_ = 0;
    cap_loads_ = 0;
    cap_stores_ = 0;
  }
  // When false, capability checks are skipped (models the baseline RV32E
  // core for the CoreMark-style ablation). Protection-relevant code must
  // never run in this mode.
  void set_checks_enabled(bool enabled) { checks_enabled_ = enabled; }

  // Snapshot save/restore (DESIGN.md §10). Guest-visible state only: SRAM
  // bytes, tag bitmap + shadow capabilities, revocation bits, access
  // counters. Host-side plumbing (MMIO table, access hook, clock pointer)
  // belongs to the constructed Machine and is rebound, never serialised.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  struct MmioRegion {
    Address base;
    Address size;
    MmioHandler handler;
  };

  [[gnu::always_inline]] inline void CheckDataAccess(const Capability& authority,
                                                     Address addr, Address size,
                                                     Permission perm) const;
  // Index of the granule containing addr (SRAM only).
  size_t GranuleIndex(Address addr) const {
    return (addr - sram_base_) / kGranuleBytes;
  }
  void ClearTagsCovering(Address addr, Address len) {
    const size_t first = GranuleIndex(AlignDown(addr, kGranuleBytes));
    const size_t last = GranuleIndex(AlignDown(addr + len - 1, kGranuleBytes));
    tags_.ClearSpan(first, last);
  }
  // Scalar-store variant: len <= kGranuleBytes touches at most two granules,
  // so skip the general span masking.
  void ClearTagsScalar(Address addr, Address len) {
    const size_t first = GranuleIndex(AlignDown(addr, kGranuleBytes));
    const size_t last = GranuleIndex(AlignDown(addr + len - 1, kGranuleBytes));
    tags_.Clear(first);
    if (last != first) {
      tags_.Clear(last);
    }
  }
  // The consolidated hot path: count the access, run the preemption hook,
  // charge cycles, run every capability check, and decode the target.
  // Returns a pointer into SRAM for the common case; nullptr means the
  // access overlaps the MMIO envelope and must take the slow dispatch path.
  // The check/trap order is identical to the pre-fast-path implementation.
  [[gnu::always_inline]] inline uint8_t* AccessFastPath(
      const Capability& authority, Address addr, Address size, Permission perm,
      Cycles cycles) {
    ++access_count_;
    if (access_hook_) {
      access_hook_(access_hook_ctx_);
    }
    if (access_observer_) {
      access_observer_(access_observer_ctx_, addr, size,
                       perm == Permission::kStore);
    }
    clock_->Tick(cycles);
    CheckDataAccess(authority, addr, size, perm);
    const uint64_t end = static_cast<uint64_t>(addr) + size;
    if (addr < mmio_max_ && end > mmio_min_) {
      return nullptr;  // overlaps a device window: dispatch off-path
    }
    if (addr < sram_base_ || end > sram_top()) {
      throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
    }
    return &bytes_[addr - sram_base_];
  }
  // Off-path continuation for accesses overlapping the MMIO envelope: MMIO
  // dispatch, or the identical unmapped-address trap / SRAM fallthrough.
  Word SlowLoad(Address addr, Address size);
  void SlowStore(Address addr, Address size, Word value);
  MmioRegion* FindMmio(Address addr, Address size);
  void HookAndTick(Cycles cycles);

  Address sram_base_;
  Address sram_size_;
  CycleClock* clock_;
  std::vector<uint8_t> bytes_;
  Bitmap tags_;                     // one bit per granule
  std::vector<Capability> shadow_;  // full capability per tagged granule
  RevocationMap revocation_;
  std::vector<MmioRegion> mmio_;  // sorted by base, non-overlapping
  size_t mmio_last_ = 0;          // index of the last region FindMmio hit
  // Cached envelope over all MMIO regions: accesses outside
  // [mmio_min_, mmio_max_) skip region lookup entirely.
  Address mmio_min_ = ~Address{0};
  Address mmio_max_ = 0;
  AccessHook access_hook_ = nullptr;
  void* access_hook_ctx_ = nullptr;
  AccessObserver access_observer_ = nullptr;
  void* access_observer_ctx_ = nullptr;
  MmioObserver mmio_observer_ = nullptr;
  void* mmio_observer_ctx_ = nullptr;
  uint64_t access_count_ = 0;
  uint64_t cap_loads_ = 0;
  uint64_t cap_stores_ = 0;
  bool checks_enabled_ = true;
};

// --- Inline scalar access paths -------------------------------------------

inline void Memory::CheckDataAccess(const Capability& authority, Address addr,
                                    Address size, Permission perm) const {
  if (!checks_enabled_) {
    return;
  }
  if (!authority.tag()) {
    throw TrapException(TrapCode::kTagViolation, addr,
                        "access via untagged capability");
  }
  if (authority.IsSealed()) {
    throw TrapException(TrapCode::kSealViolation, addr,
                        "access via sealed capability");
  }
  if (!authority.permissions().Has(perm)) {
    throw TrapException(perm == Permission::kLoad
                            ? TrapCode::kPermitLoadViolation
                            : TrapCode::kPermitStoreViolation,
                        addr, "missing permission");
  }
  if (!authority.InBounds(addr, size)) {
    throw TrapException(TrapCode::kBoundsViolation, addr,
                        "outside capability bounds");
  }
  // Temporal check: the real core's load filter untagged any stale cap at
  // load time and the revoker sweeps the register file, so by the time a
  // freed object is touched the authority is untagged. We model the combined
  // effect by checking the revocation bit of the authority's *base* at use
  // ("accesses to freed objects trap as soon as free returns", §3.1.3). The
  // allocator's whole-heap capability is exempt (kRevocationExempt).
  if (!authority.permissions().Has(Permission::kRevocationExempt) &&
      revocation_.Test(authority.base())) {
    throw TrapException(TrapCode::kTagViolation, addr,
                        "use of revoked (freed) capability");
  }
  if ((size == 4 && (addr & 3)) || (size == 2 && (addr & 1)) ||
      (size == 8 && (addr & 7))) {
    throw TrapException(TrapCode::kAlignmentFault, addr, "misaligned access");
  }
}

inline Word Memory::LoadWord(const Capability& authority, Address addr) {
  if (const uint8_t* p =
          AccessFastPath(authority, addr, 4, Permission::kLoad,
                         cost::kLoadWord)) {
    Word v;
    std::memcpy(&v, p, 4);
    return v;
  }
  return SlowLoad(addr, 4);
}

inline void Memory::StoreWord(const Capability& authority, Address addr,
                              Word value) {
  if (uint8_t* p = AccessFastPath(authority, addr, 4, Permission::kStore,
                                  cost::kStoreWord)) {
    ClearTagsScalar(addr, 4);
    std::memcpy(p, &value, 4);
    return;
  }
  SlowStore(addr, 4, value);
}

inline uint8_t Memory::LoadByte(const Capability& authority, Address addr) {
  if (const uint8_t* p =
          AccessFastPath(authority, addr, 1, Permission::kLoad,
                         cost::kLoadByte)) {
    return *p;
  }
  return static_cast<uint8_t>(SlowLoad(addr, 1));
}

inline void Memory::StoreByte(const Capability& authority, Address addr,
                              uint8_t value) {
  if (uint8_t* p = AccessFastPath(authority, addr, 1, Permission::kStore,
                                  cost::kStoreByte)) {
    ClearTagsScalar(addr, 1);
    *p = value;
    return;
  }
  SlowStore(addr, 1, value);
}

inline uint16_t Memory::LoadHalf(const Capability& authority, Address addr) {
  if (const uint8_t* p =
          AccessFastPath(authority, addr, 2, Permission::kLoad,
                         cost::kLoadHalf)) {
    uint16_t v;
    std::memcpy(&v, p, 2);
    return v;
  }
  return static_cast<uint16_t>(SlowLoad(addr, 2));
}

inline void Memory::StoreHalf(const Capability& authority, Address addr,
                              uint16_t value) {
  if (uint8_t* p = AccessFastPath(authority, addr, 2, Permission::kStore,
                                  cost::kStoreHalf)) {
    ClearTagsScalar(addr, 2);
    std::memcpy(p, &value, 2);
    return;
  }
  SlowStore(addr, 2, value);
}

}  // namespace cheriot

#endif  // SRC_MEM_MEMORY_H_

#include "src/mem/memory.h"

#include <algorithm>
#include <cstring>

#include "src/base/costs.h"
#include "src/snap/wire.h"

namespace cheriot {

const char* TrapCodeName(TrapCode code) {
  switch (code) {
    case TrapCode::kNone: return "none";
    case TrapCode::kTagViolation: return "tag violation";
    case TrapCode::kSealViolation: return "seal violation";
    case TrapCode::kBoundsViolation: return "bounds violation";
    case TrapCode::kPermitLoadViolation: return "permit-load violation";
    case TrapCode::kPermitStoreViolation: return "permit-store violation";
    case TrapCode::kPermitExecuteViolation: return "permit-execute violation";
    case TrapCode::kStoreLocalViolation: return "store-local violation";
    case TrapCode::kAlignmentFault: return "alignment fault";
    case TrapCode::kIllegalInstruction: return "illegal instruction";
    case TrapCode::kStackOverflow: return "stack overflow";
    case TrapCode::kTrustedStackOverflow: return "trusted-stack overflow";
    case TrapCode::kForcedUnwind: return "forced unwind";
  }
  return "unknown";
}

std::string TrapException::ToHex(Address a) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%08x", a);
  return buf;
}

Memory::Memory(Address sram_base, Address sram_size, CycleClock* clock)
    : sram_base_(sram_base),
      sram_size_(sram_size),
      clock_(clock),
      bytes_(sram_size, 0),
      tags_(sram_size / kGranuleBytes),
      shadow_(sram_size / kGranuleBytes),
      revocation_(sram_base, sram_size) {}

void Memory::HookAndTick(Cycles cycles) {
  ++access_count_;
  if (access_hook_) {
    access_hook_(access_hook_ctx_);
  }
  clock_->Tick(cycles);
}

Memory::MmioRegion* Memory::FindMmio(Address addr, Address size) {
  // Device polling hammers one register bank, so try the last region hit
  // before the binary search.
  if (mmio_last_ < mmio_.size()) {
    MmioRegion& cached = mmio_[mmio_last_];
    if (addr >= cached.base && static_cast<uint64_t>(addr) + size <=
                                   static_cast<uint64_t>(cached.base) +
                                       cached.size) {
      return &cached;
    }
  }
  // Regions are sorted by base and non-overlapping, so only the last region
  // starting at or below addr can contain the access.
  auto it = std::upper_bound(
      mmio_.begin(), mmio_.end(), addr,
      [](Address a, const MmioRegion& r) { return a < r.base; });
  if (it == mmio_.begin()) {
    return nullptr;
  }
  --it;
  if (static_cast<uint64_t>(addr) + size <=
      static_cast<uint64_t>(it->base) + it->size) {
    mmio_last_ = static_cast<size_t>(it - mmio_.begin());
    return &*it;
  }
  return nullptr;
}

bool Memory::IsMmio(Address addr) const {
  auto it = std::upper_bound(
      mmio_.begin(), mmio_.end(), addr,
      [](Address a, const MmioRegion& r) { return a < r.base; });
  if (it == mmio_.begin()) {
    return false;
  }
  --it;
  return addr - it->base < it->size;
}

void Memory::AddMmioRegion(Address base, Address size, MmioHandler handler) {
  auto it = std::upper_bound(
      mmio_.begin(), mmio_.end(), base,
      [](Address b, const MmioRegion& r) { return b < r.base; });
  mmio_.insert(it, {base, size, std::move(handler)});
  mmio_min_ = std::min(mmio_min_, base);
  mmio_max_ = std::max(mmio_max_, base + size);
}

Word Memory::SlowLoad(Address addr, Address size) {
  if (MmioRegion* r = FindMmio(addr, size)) {
    if (mmio_observer_) {
      mmio_observer_(mmio_observer_ctx_, addr, size, /*is_store=*/false);
    }
    return r->handler(addr - r->base, /*is_store=*/false, 0);
  }
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + size > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  Word v = 0;
  std::memcpy(&v, &bytes_[addr - sram_base_], size);
  return v;
}

void Memory::SlowStore(Address addr, Address size, Word value) {
  if (MmioRegion* r = FindMmio(addr, size)) {
    if (mmio_observer_) {
      mmio_observer_(mmio_observer_ctx_, addr, size, /*is_store=*/true);
    }
    r->handler(addr - r->base, /*is_store=*/true, value);
    return;
  }
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + size > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  ClearTagsCovering(addr, size);
  std::memcpy(&bytes_[addr - sram_base_], &value, size);
}

Capability Memory::LoadCap(const Capability& authority, Address addr) {
  ++cap_loads_;
  HookAndTick(cost::kLoadCap + cost::kLoadFilter);
  if (access_observer_) {
    access_observer_(access_observer_ctx_, addr, 8, /*is_store=*/false);
  }
  CheckDataAccess(authority, addr, 8, Permission::kLoad);
  if (addr < sram_base_ || addr + 8 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr,
                        "capability load outside SRAM");
  }
  const size_t g = GranuleIndex(addr);
  Capability result;
  if (tags_.Test(g)) {
    result = shadow_[g];
  } else {
    Word v;
    std::memcpy(&v, &bytes_[addr - sram_base_], 4);
    result = Capability::FromWord(v);
  }
  result = result.AttenuatedForLoadVia(authority);
  // The load filter (§2.1): if the loaded capability's base granule has its
  // revocation bit set, the tag is cleared as the value enters the register.
  if (result.tag() && revocation_.Test(result.base())) {
    result = result.Untagged();
  }
  return result;
}

void Memory::StoreCap(const Capability& authority, Address addr,
                      const Capability& value) {
  ++cap_stores_;
  HookAndTick(cost::kStoreCap);
  if (access_observer_) {
    access_observer_(access_observer_ctx_, addr, 8, /*is_store=*/true);
  }
  CheckDataAccess(authority, addr, 8, Permission::kStore);
  if (addr < sram_base_ || addr + 8 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr,
                        "capability store outside SRAM");
  }
  if (checks_enabled_ && value.tag()) {
    if (!authority.permissions().Has(Permission::kLoadStoreCap)) {
      // Storing through a data-only cap strips the tag (stores raw bytes).
      StoreCap(authority, addr, value.Untagged());
      return;
    }
    if (!value.permissions().Has(Permission::kGlobal) &&
        !authority.permissions().Has(Permission::kStoreLocal)) {
      throw TrapException(TrapCode::kStoreLocalViolation, addr,
                          "storing local capability without permit-store-local");
    }
  }
  ClearTagsCovering(addr, 8);
  // Serialized form: cursor in the low word, a metadata summary in the high
  // word (so guests that read a pointer as an integer see its address).
  Word meta = (static_cast<Word>(value.permissions().bits()) << 8) |
              static_cast<Word>(value.otype());
  Word cursor = value.cursor();
  std::memcpy(&bytes_[addr - sram_base_], &cursor, 4);
  std::memcpy(&bytes_[addr - sram_base_ + 4], &meta, 4);
  const size_t g = GranuleIndex(addr);
  if (value.tag()) {
    tags_.Set(g);
    shadow_[g] = value;
  }
}

void Memory::ReadBytes(const Capability& authority, Address addr, void* out,
                       Address len) {
  if (len == 0) {
    return;
  }
  HookAndTick(cost::kLoadWord * ((len + 3) / 4));
  if (access_observer_) {
    access_observer_(access_observer_ctx_, addr, len, /*is_store=*/false);
  }
  CheckDataAccess(authority, addr, len, Permission::kLoad);
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + len > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped range");
  }
  std::memcpy(out, &bytes_[addr - sram_base_], len);
}

void Memory::WriteBytes(const Capability& authority, Address addr,
                        const void* in, Address len) {
  if (len == 0) {
    return;
  }
  HookAndTick(cost::kStoreWord * ((len + 3) / 4));
  if (access_observer_) {
    access_observer_(access_observer_ctx_, addr, len, /*is_store=*/true);
  }
  CheckDataAccess(authority, addr, len, Permission::kStore);
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + len > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped range");
  }
  ClearTagsCovering(addr, len);
  std::memcpy(&bytes_[addr - sram_base_], in, len);
}

void Memory::ZeroRange(const Capability& authority, Address addr,
                       Address len) {
  if (len == 0) {
    return;
  }
  const Address granules =
      (AlignUp(addr + len, kGranuleBytes) - AlignDown(addr, kGranuleBytes)) /
      kGranuleBytes;
  HookAndTick(cost::kZeroPerGranule * granules);
  if (access_observer_) {
    access_observer_(access_observer_ctx_, addr, len, /*is_store=*/true);
  }
  CheckDataAccess(authority, addr, len, Permission::kStore);
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + len > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped range");
  }
  ClearTagsCovering(addr, len);
  std::memset(&bytes_[addr - sram_base_], 0, len);
}

uint8_t* Memory::raw(Address addr) { return &bytes_[addr - sram_base_]; }

Word Memory::RawLoadWord(Address addr) const {
  Word v;
  std::memcpy(&v, &bytes_[addr - sram_base_], 4);
  return v;
}

void Memory::RawStoreWord(Address addr, Word value) {
  std::memcpy(&bytes_[addr - sram_base_], &value, 4);
}

bool Memory::TagAt(Address addr) const {
  if (addr < sram_base_ || addr >= sram_top()) {
    return false;
  }
  return tags_.Test((addr - sram_base_) / kGranuleBytes);
}

// --- Snapshot (DESIGN.md §10) ---------------------------------------------

namespace {
void SerializeBitmapWords(snap::Writer& w, const Bitmap& b) {
  w.U64(b.size());
  for (uint64_t word : b.words()) {
    w.U64(word);
  }
}
void RestoreBitmapWords(snap::Reader& r, Bitmap& b) {
  const uint64_t bits = r.U64();
  if (bits != b.size()) {
    throw snap::SnapshotError("bitmap size mismatch in snapshot");
  }
  std::vector<uint64_t> words(b.words().size());
  for (uint64_t& word : words) {
    word = r.U64();
  }
  b.RestoreWords(words);
}
}  // namespace

void RevocationMap::SerializeState(snap::Writer& w) const {
  w.U32(base_);
  SerializeBitmapWords(w, bits_);
}

void RevocationMap::RestoreState(snap::Reader& r) {
  if (r.U32() != base_) {
    throw snap::SnapshotError("revocation map base mismatch");
  }
  RestoreBitmapWords(r, bits_);
}

void Memory::SerializeState(snap::Writer& w) const {
  w.U32(sram_base_);
  w.U32(sram_size_);
  w.Bytes(bytes_.data(), bytes_.size());
  SerializeBitmapWords(w, tags_);
  // Shadow capabilities only for tagged granules: untagged slots are stale
  // garbage that must not leak into the blob (byte-stability) and would
  // dominate its size.
  for (size_t g = tags_.FindNextSet(0); g != Bitmap::npos;
       g = tags_.FindNextSet(g + 1)) {
    w.U64(g);
    w.Cap(shadow_[g]);
  }
  revocation_.SerializeState(w);
  w.U64(access_count_);
  w.U64(cap_loads_);
  w.U64(cap_stores_);
  w.Bool(checks_enabled_);
}

void Memory::RestoreState(snap::Reader& r) {
  if (r.U32() != sram_base_ || r.U32() != sram_size_) {
    throw snap::SnapshotError("SRAM geometry mismatch");
  }
  r.BytesInto(bytes_.data(), bytes_.size());
  RestoreBitmapWords(r, tags_);
  std::fill(shadow_.begin(), shadow_.end(), Capability());
  for (size_t g = tags_.FindNextSet(0); g != Bitmap::npos;
       g = tags_.FindNextSet(g + 1)) {
    if (r.U64() != g) {
      throw snap::SnapshotError("shadow capability index mismatch");
    }
    shadow_[g] = r.Cap();
  }
  revocation_.RestoreState(r);
  access_count_ = r.U64();
  cap_loads_ = r.U64();
  cap_stores_ = r.U64();
  checks_enabled_ = r.Bool();
}

}  // namespace cheriot

#include "src/mem/memory.h"

#include <cstring>

#include "src/base/costs.h"

namespace cheriot {

const char* TrapCodeName(TrapCode code) {
  switch (code) {
    case TrapCode::kNone: return "none";
    case TrapCode::kTagViolation: return "tag violation";
    case TrapCode::kSealViolation: return "seal violation";
    case TrapCode::kBoundsViolation: return "bounds violation";
    case TrapCode::kPermitLoadViolation: return "permit-load violation";
    case TrapCode::kPermitStoreViolation: return "permit-store violation";
    case TrapCode::kPermitExecuteViolation: return "permit-execute violation";
    case TrapCode::kStoreLocalViolation: return "store-local violation";
    case TrapCode::kAlignmentFault: return "alignment fault";
    case TrapCode::kIllegalInstruction: return "illegal instruction";
    case TrapCode::kStackOverflow: return "stack overflow";
    case TrapCode::kTrustedStackOverflow: return "trusted-stack overflow";
    case TrapCode::kForcedUnwind: return "forced unwind";
  }
  return "unknown";
}

std::string TrapException::ToHex(Address a) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%08x", a);
  return buf;
}

Memory::Memory(Address sram_base, Address sram_size, CycleClock* clock)
    : sram_base_(sram_base),
      sram_size_(sram_size),
      clock_(clock),
      bytes_(sram_size, 0),
      tags_(sram_size / kGranuleBytes, false),
      shadow_(sram_size / kGranuleBytes),
      revocation_(sram_base, sram_size) {}

void Memory::HookAndTick(Cycles cycles) {
  ++access_count_;
  if (access_hook_) {
    access_hook_();
  }
  clock_->Tick(cycles);
}

void Memory::CheckDataAccess(const Capability& authority, Address addr,
                             Address size, Permission perm) const {
  if (!checks_enabled_) {
    return;
  }
  if (!authority.tag()) {
    throw TrapException(TrapCode::kTagViolation, addr,
                        "access via untagged capability");
  }
  if (authority.IsSealed()) {
    throw TrapException(TrapCode::kSealViolation, addr,
                        "access via sealed capability");
  }
  if (!authority.permissions().Has(perm)) {
    throw TrapException(perm == Permission::kLoad
                            ? TrapCode::kPermitLoadViolation
                            : TrapCode::kPermitStoreViolation,
                        addr, "missing permission");
  }
  if (!authority.InBounds(addr, size)) {
    throw TrapException(TrapCode::kBoundsViolation, addr,
                        "outside capability bounds");
  }
  // Temporal check: the real core's load filter untagged any stale cap at
  // load time and the revoker sweeps the register file, so by the time a
  // freed object is touched the authority is untagged. We model the combined
  // effect by checking the revocation bit of the authority's *base* at use
  // ("accesses to freed objects trap as soon as free returns", §3.1.3). The
  // allocator's whole-heap capability is exempt (kRevocationExempt).
  if (!authority.permissions().Has(Permission::kRevocationExempt) &&
      revocation_.Test(authority.base())) {
    throw TrapException(TrapCode::kTagViolation, addr,
                        "use of revoked (freed) capability");
  }
  if ((size == 4 && (addr & 3)) || (size == 2 && (addr & 1)) ||
      (size == 8 && (addr & 7))) {
    throw TrapException(TrapCode::kAlignmentFault, addr, "misaligned access");
  }
}

Memory::MmioRegion* Memory::FindMmio(Address addr, Address size) {
  for (auto& r : mmio_) {
    if (addr >= r.base && addr + size <= r.base + r.size) {
      return &r;
    }
  }
  return nullptr;
}

bool Memory::IsMmio(Address addr) const {
  for (const auto& r : mmio_) {
    if (addr >= r.base && addr < r.base + r.size) {
      return true;
    }
  }
  return false;
}

void Memory::AddMmioRegion(Address base, Address size, MmioHandler handler) {
  mmio_.push_back({base, size, std::move(handler)});
}

Word Memory::LoadWord(const Capability& authority, Address addr) {
  HookAndTick(cost::kLoadWord);
  CheckDataAccess(authority, addr, 4, Permission::kLoad);
  if (auto* r = FindMmio(addr, 4)) {
    return r->handler(addr - r->base, /*is_store=*/false, 0);
  }
  if (addr < sram_base_ || addr + 4 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  Word v;
  std::memcpy(&v, &bytes_[addr - sram_base_], 4);
  return v;
}

void Memory::StoreWord(const Capability& authority, Address addr, Word value) {
  HookAndTick(cost::kStoreWord);
  CheckDataAccess(authority, addr, 4, Permission::kStore);
  if (auto* r = FindMmio(addr, 4)) {
    r->handler(addr - r->base, /*is_store=*/true, value);
    return;
  }
  if (addr < sram_base_ || addr + 4 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  ClearTagsCovering(addr, 4);
  std::memcpy(&bytes_[addr - sram_base_], &value, 4);
}

uint8_t Memory::LoadByte(const Capability& authority, Address addr) {
  HookAndTick(cost::kLoadByte);
  CheckDataAccess(authority, addr, 1, Permission::kLoad);
  if (auto* r = FindMmio(addr, 1)) {
    return static_cast<uint8_t>(r->handler(addr - r->base, false, 0));
  }
  if (addr < sram_base_ || addr >= sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  return bytes_[addr - sram_base_];
}

void Memory::StoreByte(const Capability& authority, Address addr,
                       uint8_t value) {
  HookAndTick(cost::kStoreByte);
  CheckDataAccess(authority, addr, 1, Permission::kStore);
  if (auto* r = FindMmio(addr, 1)) {
    r->handler(addr - r->base, true, value);
    return;
  }
  if (addr < sram_base_ || addr >= sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  ClearTagsCovering(addr, 1);
  bytes_[addr - sram_base_] = value;
}

uint16_t Memory::LoadHalf(const Capability& authority, Address addr) {
  HookAndTick(cost::kLoadByte);
  CheckDataAccess(authority, addr, 2, Permission::kLoad);
  if (addr < sram_base_ || addr + 2 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  uint16_t v;
  std::memcpy(&v, &bytes_[addr - sram_base_], 2);
  return v;
}

void Memory::StoreHalf(const Capability& authority, Address addr,
                       uint16_t value) {
  HookAndTick(cost::kStoreByte);
  CheckDataAccess(authority, addr, 2, Permission::kStore);
  if (addr < sram_base_ || addr + 2 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped address");
  }
  ClearTagsCovering(addr, 2);
  std::memcpy(&bytes_[addr - sram_base_], &value, 2);
}

Capability Memory::LoadCap(const Capability& authority, Address addr) {
  ++cap_loads_;
  HookAndTick(cost::kLoadCap + cost::kLoadFilter);
  CheckDataAccess(authority, addr, 8, Permission::kLoad);
  if (addr < sram_base_ || addr + 8 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr,
                        "capability load outside SRAM");
  }
  const size_t g = GranuleIndex(addr);
  Capability result;
  if (tags_[g]) {
    result = shadow_[g];
  } else {
    Word v;
    std::memcpy(&v, &bytes_[addr - sram_base_], 4);
    result = Capability::FromWord(v);
  }
  result = result.AttenuatedForLoadVia(authority);
  // The load filter (§2.1): if the loaded capability's base granule has its
  // revocation bit set, the tag is cleared as the value enters the register.
  if (result.tag() && revocation_.Test(result.base())) {
    result = result.Untagged();
  }
  return result;
}

void Memory::StoreCap(const Capability& authority, Address addr,
                      const Capability& value) {
  ++cap_stores_;
  HookAndTick(cost::kStoreCap);
  CheckDataAccess(authority, addr, 8, Permission::kStore);
  if (addr < sram_base_ || addr + 8 > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr,
                        "capability store outside SRAM");
  }
  if (checks_enabled_ && value.tag()) {
    if (!authority.permissions().Has(Permission::kLoadStoreCap)) {
      // Storing through a data-only cap strips the tag (stores raw bytes).
      StoreCap(authority, addr, value.Untagged());
      return;
    }
    if (!value.permissions().Has(Permission::kGlobal) &&
        !authority.permissions().Has(Permission::kStoreLocal)) {
      throw TrapException(TrapCode::kStoreLocalViolation, addr,
                          "storing local capability without permit-store-local");
    }
  }
  ClearTagsCovering(addr, 8);
  // Serialized form: cursor in the low word, a metadata summary in the high
  // word (so guests that read a pointer as an integer see its address).
  Word meta = (static_cast<Word>(value.permissions().bits()) << 8) |
              static_cast<Word>(value.otype());
  Word cursor = value.cursor();
  std::memcpy(&bytes_[addr - sram_base_], &cursor, 4);
  std::memcpy(&bytes_[addr - sram_base_ + 4], &meta, 4);
  const size_t g = GranuleIndex(addr);
  if (value.tag()) {
    tags_[g] = true;
    shadow_[g] = value;
  }
}

void Memory::ReadBytes(const Capability& authority, Address addr, void* out,
                       Address len) {
  if (len == 0) {
    return;
  }
  HookAndTick(cost::kLoadWord * ((len + 3) / 4));
  CheckDataAccess(authority, addr, len, Permission::kLoad);
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + len > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped range");
  }
  std::memcpy(out, &bytes_[addr - sram_base_], len);
}

void Memory::WriteBytes(const Capability& authority, Address addr,
                        const void* in, Address len) {
  if (len == 0) {
    return;
  }
  HookAndTick(cost::kStoreWord * ((len + 3) / 4));
  CheckDataAccess(authority, addr, len, Permission::kStore);
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + len > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped range");
  }
  ClearTagsCovering(addr, len);
  std::memcpy(&bytes_[addr - sram_base_], in, len);
}

void Memory::ZeroRange(const Capability& authority, Address addr,
                       Address len) {
  if (len == 0) {
    return;
  }
  const Address granules =
      (AlignUp(addr + len, kGranuleBytes) - AlignDown(addr, kGranuleBytes)) /
      kGranuleBytes;
  HookAndTick(cost::kZeroPerGranule * granules);
  CheckDataAccess(authority, addr, len, Permission::kStore);
  if (addr < sram_base_ || static_cast<uint64_t>(addr) + len > sram_top()) {
    throw TrapException(TrapCode::kBoundsViolation, addr, "unmapped range");
  }
  ClearTagsCovering(addr, len);
  std::memset(&bytes_[addr - sram_base_], 0, len);
}

void Memory::ClearTagsCovering(Address addr, Address len) {
  const size_t first = GranuleIndex(AlignDown(addr, kGranuleBytes));
  const size_t last = GranuleIndex(AlignDown(addr + len - 1, kGranuleBytes));
  for (size_t g = first; g <= last && g < tags_.size(); ++g) {
    tags_[g] = false;
  }
}

uint8_t* Memory::raw(Address addr) { return &bytes_[addr - sram_base_]; }

Word Memory::RawLoadWord(Address addr) const {
  Word v;
  std::memcpy(&v, &bytes_[addr - sram_base_], 4);
  return v;
}

void Memory::RawStoreWord(Address addr, Word value) {
  std::memcpy(&bytes_[addr - sram_base_], &value, 4);
}

bool Memory::TagAt(Address addr) const {
  if (addr < sram_base_ || addr >= sram_top()) {
    return false;
  }
  return tags_[(addr - sram_base_) / kGranuleBytes];
}

}  // namespace cheriot

// Trap causes raised by the simulated hardware. Mirrors the CHERI exception
// cause register: every protection violation traps *before* the operation
// takes effect (§3.2.6: "illegal operations trap before affecting data").
#ifndef SRC_MEM_TRAP_H_
#define SRC_MEM_TRAP_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/base/types.h"

namespace cheriot {

enum class TrapCode : uint8_t {
  kNone = 0,
  kTagViolation,           // untagged (or load-filtered) capability used
  kSealViolation,          // sealed capability used without unsealing
  kBoundsViolation,        // access outside [base, top)
  kPermitLoadViolation,    // load without kLoad
  kPermitStoreViolation,   // store without kStore
  kPermitExecuteViolation, // jump through a non-executable capability
  kStoreLocalViolation,    // storing a local cap without kStoreLocal
  kAlignmentFault,
  kIllegalInstruction,
  kStackOverflow,          // callee declared more stack than available
  kTrustedStackOverflow,   // compartment-call depth exhausted
  kForcedUnwind,           // switcher-initiated unwind (micro-reboot step 2)
};

const char* TrapCodeName(TrapCode code);

// Thrown by the hardware model; caught by the switcher's first-level trap
// handler, which consults the faulting compartment's error handler.
class TrapException : public std::runtime_error {
 public:
  TrapException(TrapCode code, Address addr, const std::string& detail)
      : std::runtime_error(std::string(TrapCodeName(code)) + " @0x" +
                           ToHex(addr) + ": " + detail),
        code_(code),
        addr_(addr) {}

  TrapCode code() const { return code_; }
  Address fault_address() const { return addr_; }

 private:
  static std::string ToHex(Address a);
  TrapCode code_;
  Address addr_;
};

}  // namespace cheriot

#endif  // SRC_MEM_TRAP_H_

// Whole-image authority graph (§4, extended): the static analyzer's core
// data structure, built purely from the audit report JSON — the same
// artefact an external integrator receives — so every query here is
// answerable *before the firmware boots*, from linker metadata alone.
//
// Nodes are authority holders and authority targets:
//   compartment:<name>   library:<name>        mmio:<device>
//   sealing_key:<type>   alloc_cap:<name>      sealed_object:<name>
// Edges are the static grants recorded in the import tables: compartment
// calls, library sentries, MMIO grants, allocation capabilities, static
// sealed objects, sealing keys.
//
// Authority flows transitively along compartment-call edges: if A can call
// an export of B, A can exercise (a subset of) B's authority through that
// interface — the confused-deputy over-approximation that flat per-row
// queries (importers_of_mmio, calls) cannot express. Libraries and resources
// are sinks: a library executes with its caller's authority and holds none
// of its own, and MMIO regions / keys / sealed objects grant nothing
// further.
#ifndef SRC_ANALYSIS_AUTHORITY_GRAPH_H_
#define SRC_ANALYSIS_AUTHORITY_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "src/json/json.h"

namespace cheriot::analysis {

struct Edge {
  std::string from;    // node id, always a compartment
  std::string to;      // node id
  std::string kind;    // "call" | "library" | "mmio" | "alloc_cap" |
                       // "sealed_object" | "sealing_key"
  std::string detail;  // function name for call/library edges; sealing type
                       // for sealed objects; empty otherwise
  bool writeable = false;  // mmio edges only

  bool operator<(const Edge& o) const {
    return std::tie(from, to, kind, detail) <
           std::tie(o.from, o.to, o.kind, o.detail);
  }
  bool operator==(const Edge& o) const {
    return from == o.from && to == o.to && kind == o.kind && detail == o.detail;
  }
};

class AuthorityGraph {
 public:
  // Builds the graph from a BuildReport() document (or any JSON with the
  // same schema, e.g. a report loaded from disk).
  static AuthorityGraph FromReport(const json::Value& report);

  // All node ids, sorted.
  const std::vector<std::string>& Nodes() const { return nodes_; }
  bool HasNode(const std::string& id) const { return edges_.count(id) > 0; }
  // Outgoing edges of a node, sorted; empty for sinks and unknown nodes.
  const std::vector<Edge>& EdgesFrom(const std::string& id) const;

  // Transitive closure from `from` (excluding `from` itself unless it sits
  // on a cycle that returns to it). Sorted; cycle-safe.
  std::vector<std::string> Reachable(const std::string& from) const;
  bool Reaches(const std::string& from, const std::string& to) const;

  // Shortest authority path from -> to as a node-id sequence including both
  // endpoints; empty if unreachable. Deterministic: BFS visits neighbours in
  // sorted order, so ties break lexicographically.
  std::vector<std::string> ShortestPath(const std::string& from,
                                        const std::string& to) const;

  // For every compartment that reaches `to`, its rendered shortest path
  // ("js_app -> NetAPI -> mmio:ethernet"); sorted.
  std::vector<std::string> PathsTo(const std::string& to) const;

  // "a -> b -> mmio:x": compartments print bare, resources keep their
  // "kind:" prefix.
  static std::string RenderPath(const std::vector<std::string>& path);
  // Maps a bare name to "compartment:<name>"; ids that already carry a
  // known "kind:" prefix pass through unchanged.
  static std::string CanonicalId(const std::string& name_or_id);
  // Strips a "compartment:" prefix for display.
  static std::string DisplayName(const std::string& id);

 private:
  std::vector<std::string> nodes_;
  std::map<std::string, std::vector<Edge>> edges_;  // includes sinks (empty)
};

}  // namespace cheriot::analysis

#endif  // SRC_ANALYSIS_AUTHORITY_GRAPH_H_

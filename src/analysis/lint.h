// cheriot-lint: whole-image static analysis passes over the authority graph
// and the audit report. Every rule runs pre-boot, from linker metadata
// alone (§4) — the linter never executes guest code.
//
// Rule catalog (stable IDs; see DESIGN.md §7):
//   CL001 transitive-mmio-reachability  (info)    compartment reaches an MMIO
//         region only through other compartments' exports
//   CL002 sealing-key-confinement       (error)   a sealing key for one
//         virtual type is held by more than one compartment
//   CL003 confused-deputy-path          (error)   a compartment reaches a
//         *restricted* MMIO region transitively without importing it
//   CL004 quota-feasibility             (warning/error) allocation quotas
//         overcommit the heap (warning); a single quota exceeds it (error)
//   CL005 dead-export                   (warning) an export with no call
//         importers and no thread entering it
//   CL006 redundant-import              (warning) the same import declared
//         twice by one compartment (e.g. the same MMIO region)
//   CL007 stack-depth                   (warning) the static call graph can
//         exceed a thread's trusted-stack frames or stack bytes; also flags
//         call-graph cycles (statically unbounded depth)
//   CL008 duplicate-export              (error)   one compartment or library
//         exports the same function name twice (ambiguous linkage)
//   CL009 interrupt-posture             (warning/info) a compartment outside
//         the trusted allowlist can invoke an interrupts-disabled export
//         (directly = warning; only through other compartments = info).
//         Interrupt-disabled sentries are availability authority (§2.1): the
//         caller stalls the whole board's scheduler for the export's
//         duration, so who can reach one is an auditable property
//   CL010 unused-authority             (warning/info) a static grant (call,
//         library or MMIO import; allocation capability; sealing key) was
//         never exercised in a coverage run (src/cov evidence, §14). The one
//         evidence-driven rule: it only runs when LintOptions.coverage is
//         supplied, so plain lint output is unchanged. Unexercised call/
//         library/MMIO grants warn only when the holder was *active* (used
//         some other authority of its own); alloc-cap and sealing-key
//         findings are always info
#ifndef SRC_ANALYSIS_LINT_H_
#define SRC_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "src/analysis/authority_graph.h"
#include "src/json/json.h"

namespace cheriot::analysis {

struct Finding {
  std::string rule;      // "CL003"
  std::string name;      // "confused-deputy-path"
  std::string severity;  // "error" | "warning" | "info"
  std::string subject;   // the offending compartment/export/resource
  std::string message;   // human-readable, deterministic
  std::vector<std::string> path;  // authority path (node ids), may be empty
  std::string fix;       // exact ImageBuilder call to delete (CL005/CL006)
};

struct LintOptions {
  // MMIO devices only direct importers may reach. Any transitive-only path
  // to one of these is a CL003 error (the seeded confused-deputy check).
  std::vector<std::string> restricted_mmio;
  // Compartments/libraries whose unreferenced exports are expected: the TCB
  // service surface is linked into every image whether used or not.
  std::vector<std::string> dead_export_exempt = {"alloc", "sched", "token"};
  // CL009: compartments trusted to invoke interrupts-disabled exports (bare
  // names). Anything else that can reach one is flagged.
  std::vector<std::string> interrupt_posture_allowlist;
  // CL009: owners whose interrupts-disabled exports are the expected TCB
  // service surface — every compartment calls these by design.
  std::vector<std::string> posture_exempt_owners = {"alloc", "sched", "token"};
  // CL010: optional dynamic evidence — a parsed cov_<image>.json document
  // (tools/cheriot_cov, src/cov/report.h). Null (the default) disables the
  // rule entirely; evidence for a different image yields a single info
  // finding instead of a diff.
  const json::Value* coverage = nullptr;
};

// Runs all lint passes over a BuildReport() document. Findings are sorted
// by (severity rank, rule, subject, message) — errors first — and are
// byte-stable across runs.
std::vector<Finding> RunLints(const json::Value& report,
                              const LintOptions& options = {});

bool HasErrors(const std::vector<Finding>& findings);

// Stable JSON document: {schema_version, image, counts, findings:[...]}.
json::Value FindingsToJson(const json::Value& report,
                           const std::vector<Finding>& findings);
// Human-readable listing, one finding per paragraph.
std::string FindingsToText(const json::Value& report,
                           const std::vector<Finding>& findings);

// For CL005/CL006 findings: the exact ImageBuilder call to delete. Returns
// an empty string for rules with no mechanical fix.
std::string FixSuggestion(const Finding& finding);

}  // namespace cheriot::analysis

#endif  // SRC_ANALYSIS_LINT_H_

#include "src/analysis/authority_graph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace cheriot::analysis {

namespace {

const std::vector<Edge> kNoEdges;

// Reports loaded from disk may be missing whole sections; treat them as
// empty rather than dereferencing a null value.
const json::Object& ObjOrEmpty(const json::Value& v) {
  static const json::Object kEmpty;
  return v.type() == json::Value::Type::kObject ? v.AsObject() : kEmpty;
}
const json::Array& ArrOrEmpty(const json::Value& v) {
  static const json::Array kEmpty;
  return v.type() == json::Value::Type::kArray ? v.AsArray() : kEmpty;
}

// The resource prefixes a node id may carry. A bare name (no known prefix)
// is a compartment.
const char* kPrefixes[] = {"compartment:", "library:",       "mmio:",
                           "sealing_key:", "alloc_cap:",     "sealed_object:"};

}  // namespace

std::string AuthorityGraph::CanonicalId(const std::string& name_or_id) {
  for (const char* p : kPrefixes) {
    if (name_or_id.rfind(p, 0) == 0) {
      return name_or_id;
    }
  }
  return "compartment:" + name_or_id;
}

std::string AuthorityGraph::DisplayName(const std::string& id) {
  if (id.rfind("compartment:", 0) == 0) {
    return id.substr(sizeof("compartment:") - 1);
  }
  return id;
}

std::string AuthorityGraph::RenderPath(const std::vector<std::string>& path) {
  std::string out;
  for (const auto& node : path) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += DisplayName(node);
  }
  return out;
}

AuthorityGraph AuthorityGraph::FromReport(const json::Value& report) {
  AuthorityGraph g;
  auto node = [&g](const std::string& id) {
    g.edges_.emplace(id, std::vector<Edge>{});
  };

  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    const std::string from = "compartment:" + name;
    node(from);
    for (const auto& imp : ArrOrEmpty(comp["imports"])) {
      const std::string& kind = imp["kind"].AsString();
      Edge e;
      e.from = from;
      if (kind == "call") {
        e.to = "compartment:" + imp["compartment_name"].AsString();
        e.kind = "call";
        e.detail = imp["function"].AsString();
      } else if (kind == "library") {
        e.to = "library:" + imp["library"].AsString();
        e.kind = "library";
        e.detail = imp["function"].AsString();
      } else if (kind == "mmio") {
        e.to = "mmio:" + imp["device"].AsString();
        e.kind = "mmio";
        e.writeable = imp["writeable"].AsBool();
      } else if (kind == "allocation_capability") {
        e.to = "alloc_cap:" + imp["name"].AsString();
        e.kind = "alloc_cap";
      } else if (kind == "sealed_object") {
        e.to = "sealed_object:" + imp["name"].AsString();
        e.kind = "sealed_object";
        e.detail = imp["sealing_type"].AsString();
      } else if (kind == "sealing_key") {
        e.to = "sealing_key:" + imp["sealing_type"].AsString();
        e.kind = "sealing_key";
      } else {
        continue;  // unknown import kinds are ignored, not fatal
      }
      node(e.to);
      g.edges_[from].push_back(std::move(e));
    }
  }
  for (const auto& [name, _] : ObjOrEmpty(report["libraries"])) {
    node("library:" + name);
  }

  for (auto& [id, out] : g.edges_) {
    std::sort(out.begin(), out.end());
    g.nodes_.push_back(id);
  }
  return g;  // std::map iteration already yields nodes_ sorted
}

const std::vector<Edge>& AuthorityGraph::EdgesFrom(const std::string& id) const {
  const auto it = edges_.find(id);
  return it == edges_.end() ? kNoEdges : it->second;
}

std::vector<std::string> AuthorityGraph::Reachable(
    const std::string& from) const {
  std::set<std::string> seen;
  std::deque<std::string> work{from};
  while (!work.empty()) {
    const std::string cur = std::move(work.front());
    work.pop_front();
    for (const auto& e : EdgesFrom(cur)) {
      if (seen.insert(e.to).second) {
        work.push_back(e.to);
      }
    }
  }
  return {seen.begin(), seen.end()};
}

bool AuthorityGraph::Reaches(const std::string& from,
                             const std::string& to) const {
  const auto r = Reachable(from);
  return std::binary_search(r.begin(), r.end(), to);
}

std::vector<std::string> AuthorityGraph::ShortestPath(
    const std::string& from, const std::string& to) const {
  std::map<std::string, std::string> parent;  // node -> predecessor
  std::deque<std::string> work{from};
  parent[from] = "";
  while (!work.empty()) {
    const std::string cur = std::move(work.front());
    work.pop_front();
    for (const auto& e : EdgesFrom(cur)) {
      if (parent.count(e.to)) {
        continue;
      }
      parent[e.to] = cur;
      if (e.to == to) {
        std::vector<std::string> path{to};
        for (std::string at = cur; !at.empty(); at = parent.at(at)) {
          path.push_back(at);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      work.push_back(e.to);
    }
  }
  return {};
}

std::vector<std::string> AuthorityGraph::PathsTo(const std::string& to) const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.rfind("compartment:", 0) != 0 || n == to) {
      continue;
    }
    const auto path = ShortestPath(n, to);
    if (!path.empty()) {
      out.push_back(RenderPath(path));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cheriot::analysis

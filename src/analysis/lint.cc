#include "src/analysis/lint.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/cov/report.h"

namespace cheriot::analysis {

namespace {

int SeverityRank(const std::string& s) {
  if (s == "error") return 0;
  if (s == "warning") return 1;
  return 2;
}

// Reports loaded from disk may be missing whole sections; treat them as
// empty rather than crashing the linter.
const json::Object& ObjOrEmpty(const json::Value& v) {
  static const json::Object kEmpty;
  return v.type() == json::Value::Type::kObject ? v.AsObject() : kEmpty;
}
const json::Array& ArrOrEmpty(const json::Value& v) {
  static const json::Array kEmpty;
  return v.type() == json::Value::Type::kArray ? v.AsArray() : kEmpty;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// --- CL001 / CL003: transitive MMIO reachability --------------------------

void MmioReachability(const AuthorityGraph& graph, const LintOptions& options,
                      std::vector<Finding>* findings) {
  for (const auto& node : graph.Nodes()) {
    if (node.rfind("mmio:", 0) != 0) {
      continue;
    }
    const std::string device = node.substr(sizeof("mmio:") - 1);
    const bool restricted = Contains(options.restricted_mmio, device);
    for (const auto& comp : graph.Nodes()) {
      if (comp.rfind("compartment:", 0) != 0) {
        continue;
      }
      bool direct = false;
      for (const auto& e : graph.EdgesFrom(comp)) {
        if (e.to == node) {
          direct = true;
        }
      }
      if (direct || !graph.Reaches(comp, node)) {
        continue;
      }
      const auto path = graph.ShortestPath(comp, node);
      Finding f;
      f.subject = AuthorityGraph::DisplayName(comp);
      f.path = path;
      if (restricted) {
        f.rule = "CL003";
        f.name = "confused-deputy-path";
        f.severity = "error";
        f.message = f.subject + " reaches restricted " + node +
                    " without importing it: " +
                    AuthorityGraph::RenderPath(path);
      } else {
        f.rule = "CL001";
        f.name = "transitive-mmio-reachability";
        f.severity = "info";
        f.message = f.subject + " reaches " + node +
                    " transitively: " + AuthorityGraph::RenderPath(path);
      }
      findings->push_back(std::move(f));
    }
  }
}

// --- CL002: sealing-key confinement ----------------------------------------

void SealingKeyConfinement(const AuthorityGraph& graph,
                           std::vector<Finding>* findings) {
  std::map<std::string, std::vector<std::string>> holders;  // type -> comps
  for (const auto& node : graph.Nodes()) {
    for (const auto& e : graph.EdgesFrom(node)) {
      if (e.kind == "sealing_key") {
        holders[e.to].push_back(AuthorityGraph::DisplayName(e.from));
      }
    }
  }
  for (const auto& [key, comps] : holders) {
    if (comps.size() <= 1) {
      continue;
    }
    Finding f;
    f.rule = "CL002";
    f.name = "sealing-key-confinement";
    f.severity = "error";
    f.subject = key;
    f.message = key + " is held by " + std::to_string(comps.size()) +
                " compartments:";
    for (const auto& c : comps) {
      f.message += " " + c;
    }
    findings->push_back(std::move(f));
  }
}

// --- CL004: quota feasibility -----------------------------------------------

void QuotaFeasibility(const json::Value& report,
                      std::vector<Finding>* findings) {
  const int64_t heap = report["heap"]["size"].AsInt();
  int64_t sum = 0;
  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    for (const auto& imp : ArrOrEmpty(comp["imports"])) {
      if (imp["kind"].AsString() != "allocation_capability") {
        continue;
      }
      const int64_t quota = imp["quota"].AsInt();
      sum += quota;
      if (quota > heap) {
        Finding f;
        f.rule = "CL004";
        f.name = "quota-feasibility";
        f.severity = "error";
        f.subject = name + "." + imp["name"].AsString();
        f.message = "allocation capability " + imp["name"].AsString() +
                    " of " + name + " has quota " + std::to_string(quota) +
                    " B, larger than the whole heap (" + std::to_string(heap) +
                    " B): it can never be satisfied";
        findings->push_back(std::move(f));
      }
    }
  }
  if (sum > heap) {
    Finding f;
    f.rule = "CL004";
    f.name = "quota-feasibility";
    f.severity = "warning";
    f.subject = "heap";
    f.message = "allocation quotas sum to " + std::to_string(sum) +
                " B against a " + std::to_string(heap) +
                " B heap: quotas are overcommitted, so the no-DoS guarantee "
                "(§3.2.2) does not hold for every compartment simultaneously";
    findings->push_back(std::move(f));
  }
}

// --- CL005: dead exports -----------------------------------------------------

void DeadExports(const json::Value& report, const LintOptions& options,
                 std::vector<Finding>* findings) {
  std::set<std::string> used;  // "owner.function", owners of both kinds
  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    for (const auto& imp : ArrOrEmpty(comp["imports"])) {
      const std::string& kind = imp["kind"].AsString();
      if (kind == "call") {
        used.insert(imp["compartment_name"].AsString() + "." +
                    imp["function"].AsString());
      } else if (kind == "library") {
        used.insert(imp["library"].AsString() + "." +
                    imp["function"].AsString());
      }
    }
  }
  for (const auto& t : ArrOrEmpty(report["threads"])) {
    if (t.Has("entry")) {
      used.insert(t["entry"].AsString());
    } else {
      // Pre-v2 reports name only the entry compartment; treat every export
      // of it as potentially entered.
      const json::Value& exports =
          report["compartments"][t["entry_compartment"].AsString()]["exports"];
      if (exports.is_null()) {
        continue;
      }
      for (const auto& e : exports.AsArray()) {
        used.insert(t["entry_compartment"].AsString() + "." +
                    e["function"].AsString());
      }
    }
  }

  auto scan = [&](const std::string& owner, const json::Value& def,
                  bool is_library) {
    if (Contains(options.dead_export_exempt, owner)) {
      return;
    }
    for (const auto& e : ArrOrEmpty(def["exports"])) {
      const std::string fn = e["function"].AsString();
      if (used.count(owner + "." + fn)) {
        continue;
      }
      Finding f;
      f.rule = "CL005";
      f.name = "dead-export";
      f.severity = "warning";
      f.subject = (is_library ? "library:" : "") + owner + "." + fn;
      f.message = std::string(is_library ? "library " : "compartment ") +
                  owner + " exports " + fn +
                  " but no compartment imports it and no thread enters it";
      f.fix = std::string("remove dead export: ImageBuilder.") +
              (is_library ? "Library" : "Compartment") + "(\"" + owner +
              "\").Export(\"" + fn + "\", ...)";
      findings->push_back(std::move(f));
    }
  };
  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    scan(name, comp, false);
  }
  for (const auto& [name, lib] : ObjOrEmpty(report["libraries"])) {
    scan(name, lib, true);
  }
}

// --- CL006: redundant imports ------------------------------------------------

void RedundantImports(const json::Value& report,
                      std::vector<Finding>* findings) {
  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    // identity -> (count, builder call)
    std::map<std::string, std::pair<int, std::string>> seen;
    for (const auto& imp : ArrOrEmpty(comp["imports"])) {
      const std::string& kind = imp["kind"].AsString();
      std::string identity, call;
      if (kind == "call") {
        identity = "call " + imp["compartment_name"].AsString() + "." +
                   imp["function"].AsString();
        call = "ImportCompartment(\"" + imp["compartment_name"].AsString() +
               "." + imp["function"].AsString() + "\")";
      } else if (kind == "library") {
        identity = "library " + imp["library"].AsString() + "." +
                   imp["function"].AsString();
        call = "ImportLibrary(\"" + imp["library"].AsString() + "." +
               imp["function"].AsString() + "\")";
      } else if (kind == "mmio") {
        identity = "mmio " + imp["device"].AsString();
        call = "ImportMmio(\"" + imp["device"].AsString() + "\", ...)";
      } else if (kind == "allocation_capability") {
        identity = "alloc_cap " + imp["name"].AsString();
        call = "AllocCap(\"" + imp["name"].AsString() + "\", ...)";
      } else if (kind == "sealed_object") {
        identity = "sealed_object " + imp["name"].AsString();
        call = "SealedObject(\"" + imp["name"].AsString() + "\", ...)";
      } else if (kind == "sealing_key") {
        identity = "sealing_key " + imp["sealing_type"].AsString();
        call = "OwnSealingType(\"" + imp["sealing_type"].AsString() + "\")";
      } else {
        continue;
      }
      auto& entry = seen[identity];
      ++entry.first;
      entry.second = call;
    }
    for (const auto& [identity, entry] : seen) {
      if (entry.first <= 1) {
        continue;
      }
      Finding f;
      f.rule = "CL006";
      f.name = "redundant-import";
      f.severity = "warning";
      f.subject = name;
      f.message = name + " declares the same import " +
                  std::to_string(entry.first) + " times: " + identity;
      f.fix = "remove duplicate: ImageBuilder.Compartment(\"" + name +
              "\")." + entry.second;
      findings->push_back(std::move(f));
    }
  }
}

// --- CL007: stack depth vs the static call graph ----------------------------

struct DepthInfo {
  int frames = 0;       // compartments on the deepest chain, inclusive
  int64_t bytes = 0;    // worst-case sum of per-compartment stack demand
  bool cycle = false;   // a call cycle is reachable (depth unbounded)
};

// Worst-case stack demand of entering a compartment: the largest
// minimum_stack over its exports (the linter cannot know which export a
// caller uses, so it over-approximates).
int64_t CompartmentStackDemand(const json::Value& report,
                               const std::string& name) {
  int64_t demand = 0;
  const json::Value& exports = report["compartments"][name]["exports"];
  if (exports.is_null()) {
    return 0;  // dangling call edge in a hand-crafted report
  }
  for (const auto& e : exports.AsArray()) {
    demand = std::max(demand, e["minimum_stack"].AsInt());
  }
  return demand;
}

DepthInfo WalkDepth(const json::Value& report, const AuthorityGraph& graph,
                    const std::string& node, std::set<std::string>* on_stack,
                    std::map<std::string, DepthInfo>* memo) {
  if (const auto it = memo->find(node); it != memo->end()) {
    return it->second;
  }
  if (on_stack->count(node)) {
    DepthInfo cyc;
    cyc.cycle = true;
    return cyc;  // do not memoize: the node's true depth is not known yet
  }
  on_stack->insert(node);
  DepthInfo best;
  for (const auto& e : graph.EdgesFrom(node)) {
    if (e.kind != "call") {
      continue;
    }
    const DepthInfo sub = WalkDepth(report, graph, e.to, on_stack, memo);
    best.frames = std::max(best.frames, sub.frames);
    best.bytes = std::max(best.bytes, sub.bytes);
    best.cycle = best.cycle || sub.cycle;
  }
  on_stack->erase(node);
  best.frames += 1;
  best.bytes +=
      CompartmentStackDemand(report, AuthorityGraph::DisplayName(node));
  (*memo)[node] = best;
  return best;
}

void StackDepth(const json::Value& report, const AuthorityGraph& graph,
                std::vector<Finding>* findings) {
  std::map<std::string, DepthInfo> memo;
  for (const auto& t : ArrOrEmpty(report["threads"])) {
    const std::string entry = t["entry_compartment"].AsString();
    std::set<std::string> on_stack;
    const DepthInfo d =
        WalkDepth(report, graph, "compartment:" + entry, &on_stack, &memo);
    const std::string thread = t["name"].AsString();
    if (d.cycle) {
      Finding f;
      f.rule = "CL007";
      f.name = "stack-depth";
      f.severity = "warning";
      f.subject = thread;
      f.message = "thread " + thread + " enters " + entry +
                  ", whose static call graph contains a cycle: trusted-stack "
                  "depth cannot be bounded statically";
      findings->push_back(std::move(f));
      continue;  // depth numbers are meaningless under a cycle
    }
    const int64_t frames = t["trusted_stack_frames"].AsInt();
    if (d.frames > frames) {
      Finding f;
      f.rule = "CL007";
      f.name = "stack-depth";
      f.severity = "warning";
      f.subject = thread;
      f.message = "thread " + thread + " has " + std::to_string(frames) +
                  " trusted-stack frames but the static call graph from " +
                  entry + " can be " + std::to_string(d.frames) +
                  " compartments deep: deep call chains will fault";
      findings->push_back(std::move(f));
    }
    const int64_t stack = t["stack_size"].AsInt();
    if (d.bytes > stack) {
      Finding f;
      f.rule = "CL007";
      f.name = "stack-depth";
      f.severity = "warning";
      f.subject = thread;
      f.message = "thread " + thread + " has a " + std::to_string(stack) +
                  " B stack but the worst static call chain from " + entry +
                  " demands " + std::to_string(d.bytes) +
                  " B of minimum stack";
      findings->push_back(std::move(f));
    }
  }
}

// --- CL008: duplicate exports ------------------------------------------------

void DuplicateExports(const json::Value& report,
                      std::vector<Finding>* findings) {
  auto scan = [&](const std::string& owner, const json::Value& def,
                  bool is_library) {
    std::map<std::string, int> counts;
    for (const auto& e : ArrOrEmpty(def["exports"])) {
      ++counts[e["function"].AsString()];
    }
    for (const auto& [fn, n] : counts) {
      if (n <= 1) {
        continue;
      }
      Finding f;
      f.rule = "CL008";
      f.name = "duplicate-export";
      f.severity = "error";
      f.subject = (is_library ? "library:" : "") + owner + "." + fn;
      f.message = std::string(is_library ? "library " : "compartment ") +
                  owner + " exports " + fn + " " + std::to_string(n) +
                  " times: import resolution is ambiguous";
      findings->push_back(std::move(f));
    }
  };
  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    scan(name, comp, false);
  }
  for (const auto& [name, lib] : ObjOrEmpty(report["libraries"])) {
    scan(name, lib, true);
  }
}

// --- CL009: interrupt-posture audit ----------------------------------------

void InterruptPostureAudit(const json::Value& report,
                           const AuthorityGraph& graph,
                           const LintOptions& options,
                           std::vector<Finding>* findings) {
  // Every interrupts-disabled export of a non-exempt owner, with its graph
  // node id ("compartment:x" / "library:x").
  struct DisabledExport {
    std::string owner;
    std::string node;
    std::string fn;
    bool is_library;
  };
  std::vector<DisabledExport> disabled;
  auto scan = [&](const std::string& owner, const json::Value& def,
                  bool is_library) {
    if (Contains(options.posture_exempt_owners, owner)) {
      return;
    }
    for (const auto& e : ArrOrEmpty(def["exports"])) {
      if (e["interrupt_posture"].AsString() != "disabled") {
        continue;
      }
      disabled.push_back({owner,
                          (is_library ? "library:" : "compartment:") + owner,
                          e["function"].AsString(), is_library});
    }
  };
  for (const auto& [name, comp] : ObjOrEmpty(report["compartments"])) {
    scan(name, comp, false);
  }
  for (const auto& [name, lib] : ObjOrEmpty(report["libraries"])) {
    scan(name, lib, true);
  }

  // Direct importers get one warning per export; transitive-only reachers
  // get one info finding per (caller, owner) — every disabled export of the
  // owner sits behind the same path, so per-export findings are pure noise.
  std::set<std::pair<std::string, std::string>> transitive_seen;
  for (const auto& d : disabled) {
    for (const auto& comp : graph.Nodes()) {
      if (comp.rfind("compartment:", 0) != 0) {
        continue;
      }
      const std::string caller = AuthorityGraph::DisplayName(comp);
      if (caller == d.owner || Contains(options.interrupt_posture_allowlist,
                                        caller)) {
        continue;
      }
      bool direct = false;
      for (const auto& e : graph.EdgesFrom(comp)) {
        if (e.to == d.node && e.detail == d.fn &&
            (e.kind == "call" || e.kind == "library")) {
          direct = true;
        }
      }
      if (!direct && !graph.Reaches(comp, d.node)) {
        continue;
      }
      if (!direct && !transitive_seen.emplace(caller, d.node).second) {
        continue;
      }
      Finding f;
      f.rule = "CL009";
      f.name = "interrupt-posture";
      f.subject = caller;
      if (direct) {
        f.severity = "warning";
        f.message = caller + " can invoke " + d.owner + "." + d.fn +
                    ", which runs with interrupts disabled; allowlist " +
                    caller + " if this availability authority is intended";
      } else {
        // Reaches the owner only through other compartments: a confused
        // deputy could still drive it into its interrupts-disabled region.
        f.severity = "info";
        f.path = graph.ShortestPath(comp, d.node);
        f.message = caller + " reaches interrupts-disabled " + d.owner +
                    " transitively: " + AuthorityGraph::RenderPath(f.path);
      }
      findings->push_back(std::move(f));
    }
  }
}

// --- CL010: unused-authority (dynamic coverage evidence) --------------------

void UnusedAuthority(const json::Value& report, const LintOptions& options,
                     std::vector<Finding>* findings) {
  if (options.coverage == nullptr) {
    return;
  }
  const cov::ExerciseIndex idx = cov::BuildExerciseIndex(*options.coverage);
  if (!idx.valid) {
    return;
  }
  const std::string image = report["firmware"].AsString();
  auto push = [findings](const std::string& severity,
                         const std::string& subject, std::string message,
                         std::string fix) {
    Finding f;
    f.rule = "CL010";
    f.name = "unused-authority";
    f.severity = severity;
    f.subject = subject;
    f.message = std::move(message);
    f.fix = std::move(fix);
    findings->push_back(std::move(f));
  };
  if (idx.image != image) {
    push("info", image,
         "coverage evidence is for image \"" + idx.image + "\", not \"" +
             image + "\"; unused-authority not evaluated",
         "re-run cheriot_cov on this image");
    return;
  }
  const std::set<std::string>& service = cov::ServiceOwners();
  for (const auto& [comp, c] : ObjOrEmpty(report["compartments"])) {
    // Mirrors the least-privilege report (src/cov/report.cc): an
    // unexercised grant is only *suspicious* when its holder demonstrably
    // ran and used other authority of its own; being called doesn't count.
    // Imports targeting a service owner — and service owners' own device
    // windows — are wholesale linkage (sync::Use*, net::UseNetwork), so
    // they stay info regardless.
    const bool active = idx.active.count(comp) > 0;
    const std::string unused_sev = active ? "warning" : "info";
    const std::string holder_sev = service.count(comp) ? "info" : unused_sev;
    for (const auto& imp : ArrOrEmpty(c["imports"])) {
      const std::string& kind = imp["kind"].AsString();
      if (kind == "call") {
        const std::string& callee = imp["compartment_name"].AsString();
        const std::string target = callee + "." + imp["function"].AsString();
        if (!idx.calls.count({comp, target})) {
          push(service.count(callee) ? "info" : unused_sev,
               comp + " -> " + target,
               comp + " imports " + target + " but never called it",
               "remove unused import: ImageBuilder.Compartment(\"" + comp +
                   "\").ImportCompartment(\"" + target + "\")");
        }
      } else if (kind == "library") {
        const std::string& library = imp["library"].AsString();
        const std::string target = library + "." + imp["function"].AsString();
        if (!idx.libcalls.count({comp, target})) {
          push(service.count(library) ? "info" : unused_sev,
               comp + " -> " + target,
               comp + " imports library " + target + " but never called it",
               "remove unused import: ImageBuilder.Compartment(\"" + comp +
                   "\").ImportLibrary(\"" + target + "\")");
        }
      } else if (kind == "mmio") {
        const std::string& device = imp["device"].AsString();
        const auto key = std::make_tuple(
            comp, device, static_cast<uint64_t>(imp["start"].AsInt()),
            static_cast<uint64_t>(imp["length"].AsInt()));
        auto it = idx.mmio.find(key);
        if (it == idx.mmio.end() ||
            it->second.reads + it->second.writes == 0) {
          push(holder_sev, comp + " -> " + device,
               comp + " holds mmio grant \"" + device + "\" (" +
                   std::to_string(imp["length"].AsInt()) +
                   " bytes) but never touched it",
               "remove unused grant: ImageBuilder.Compartment(\"" + comp +
                   "\").ImportMmio(\"" + device + "\", ...)");
        }
      } else if (kind == "allocation_capability") {
        const std::string& name = imp["name"].AsString();
        auto it = idx.quotas.find({comp, name});
        if (it == idx.quotas.end() ||
            it->second.allocations + it->second.denials == 0) {
          // Quotas and sealing keys are standing headroom, not a reachable
          // attack surface the way a dead call or device window is: info.
          push("info", comp + " -> " + name,
               comp + " holds allocation capability \"" + name +
                   "\" but never allocated from it",
               "remove unused quota: ImageBuilder.Compartment(\"" + comp +
                   "\").AllocCap(\"" + name + "\", ...)");
        }
      } else if (kind == "sealing_key") {
        const std::string& type = imp["sealing_type"].AsString();
        if (!idx.sealing.count({comp, type})) {
          push("info", comp + " -> " + type,
               comp + " holds a sealing key for \"" + type +
                   "\" but never sealed or unsealed with it",
               "remove unused key: ImageBuilder.Compartment(\"" + comp +
                   "\").SealingKey(\"" + type + "\")");
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> RunLints(const json::Value& report,
                              const LintOptions& options) {
  const AuthorityGraph graph = AuthorityGraph::FromReport(report);
  std::vector<Finding> findings;
  MmioReachability(graph, options, &findings);
  SealingKeyConfinement(graph, &findings);
  QuotaFeasibility(report, &findings);
  DeadExports(report, options, &findings);
  RedundantImports(report, &findings);
  StackDepth(report, graph, &findings);
  DuplicateExports(report, &findings);
  InterruptPostureAudit(report, graph, options, &findings);
  UnusedAuthority(report, options, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              const int ra = SeverityRank(a.severity);
              const int rb = SeverityRank(b.severity);
              return std::tie(ra, a.rule, a.subject, a.message) <
                     std::tie(rb, b.rule, b.subject, b.message);
            });
  return findings;
}

bool HasErrors(const std::vector<Finding>& findings) {
  for (const auto& f : findings) {
    if (f.severity == "error") {
      return true;
    }
  }
  return false;
}

json::Value FindingsToJson(const json::Value& report,
                           const std::vector<Finding>& findings) {
  json::Object root;
  root["schema_version"] = 1;
  root["image"] = report["firmware"].AsString();
  json::Object counts;
  int64_t errors = 0, warnings = 0, infos = 0;
  for (const auto& f : findings) {
    if (f.severity == "error") ++errors;
    else if (f.severity == "warning") ++warnings;
    else ++infos;
  }
  counts["error"] = errors;
  counts["warning"] = warnings;
  counts["info"] = infos;
  root["counts"] = json::Value(std::move(counts));
  json::Array arr;
  for (const auto& f : findings) {
    json::Object o;
    o["rule"] = f.rule;
    o["name"] = f.name;
    o["severity"] = f.severity;
    o["subject"] = f.subject;
    o["message"] = f.message;
    if (!f.path.empty()) {
      json::Array p;
      for (const auto& n : f.path) {
        p.push_back(n);
      }
      o["path"] = json::Value(std::move(p));
    }
    if (!f.fix.empty()) {
      o["fix"] = f.fix;
    }
    arr.push_back(json::Value(std::move(o)));
  }
  root["findings"] = json::Value(std::move(arr));
  return json::Value(std::move(root));
}

std::string FindingsToText(const json::Value& report,
                           const std::vector<Finding>& findings) {
  std::string out = "image " + report["firmware"].AsString() + ": " +
                    std::to_string(findings.size()) + " finding(s)\n";
  for (const auto& f : findings) {
    out += "[" + f.severity + "] " + f.rule + " " + f.name + ": " + f.message +
           "\n";
    if (!f.path.empty()) {
      out += "        path: " + AuthorityGraph::RenderPath(f.path) + "\n";
    }
  }
  return out;
}

std::string FixSuggestion(const Finding& finding) { return finding.fix; }

}  // namespace cheriot::analysis

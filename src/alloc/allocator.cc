#include "src/alloc/allocator.h"

#include <algorithm>

#include "src/base/costs.h"
#include "src/base/log.h"
#include "src/cov/coverage.h"
#include "src/health/forensics.h"
#include "src/kernel/system.h"
#include "src/runtime/compartment_ctx.h"
#include "src/snap/wire.h"
#include "src/trace/trace.h"

namespace cheriot {

void Allocator::Init() {
  BootInfo& boot = system_->boot();
  heap_root_ = boot.heap_root;
  heap_base_ = AlignUp(boot.heap_base, kGranuleBytes);
  heap_size_ = boot.heap_size - (heap_base_ - boot.heap_base);
  heap_size_ = AlignDown(heap_size_, kGranuleBytes);

  Header first;
  first.size = heap_size_;
  first.prev_size = 0;
  first.state = ChunkState::kFree;
  WriteHeader(heap_base_, first);
  free_chunks_.insert(heap_base_);
}

int Allocator::ServiceCompartmentId() {
  if (service_compartment_ == -2) {
    CompartmentRuntime* rt = system_->boot().FindCompartment("alloc");
    service_compartment_ = rt ? rt->id : -1;
  }
  return service_compartment_;
}

int Allocator::AttributedCompartment() {
  const int thread = system_->current_thread_id();
  if (thread < 0) {
    return -1;
  }
  const GuestThread& t = system_->threads()[thread];
  const auto& stack = t.compartment_stack;
  if (stack.size() >= 2 && stack.back() == ServiceCompartmentId()) {
    return stack[stack.size() - 2];
  }
  return t.current_compartment;
}

Allocator::Header Allocator::ReadHeader(Address chunk) const {
  Memory& mem = system_->machine().memory();
  Header h;
  h.size = mem.LoadWord(heap_root_, chunk);
  h.prev_size = mem.LoadWord(heap_root_, chunk + 4);
  const Word packed = mem.LoadWord(heap_root_, chunk + 8);
  h.state = static_cast<ChunkState>(packed & 0xFF);
  h.quota = static_cast<uint8_t>((packed >> 8) & 0xFF);
  h.claims = static_cast<uint8_t>((packed >> 16) & 0xFF);
  h.flags = static_cast<uint8_t>((packed >> 24) & 0xFF);
  h.epoch = mem.LoadWord(heap_root_, chunk + 12);
  return h;
}

void Allocator::WriteHeader(Address chunk, const Header& h) {
  Memory& mem = system_->machine().memory();
  mem.StoreWord(heap_root_, chunk, h.size);
  mem.StoreWord(heap_root_, chunk + 4, h.prev_size);
  mem.StoreWord(heap_root_, chunk + 8,
                static_cast<Word>(h.state) | (static_cast<Word>(h.quota) << 8) |
                    (static_cast<Word>(h.claims) << 16) |
                    (static_cast<Word>(h.flags) << 24));
  mem.StoreWord(heap_root_, chunk + 12, h.epoch);
}

Capability Allocator::UnsealAllocCap(const Capability& alloc_cap) const {
  Capability unsealed =
      alloc_cap.UnsealedWith(system_->boot().allocator_seal_key);
  if (!unsealed.tag() || unsealed.length() < 16) {
    return Capability();
  }
  Memory& mem = system_->machine().memory();
  if (mem.LoadWord(unsealed, unsealed.base()) != 0x414C4F43u) {  // 'ALOC'
    return Capability();
  }
  return unsealed;
}

Word Allocator::QuotaLimit(const Capability& q) const {
  return system_->machine().memory().LoadWord(q, q.base() + 4);
}
Word Allocator::QuotaUsed(const Capability& q) const {
  return system_->machine().memory().LoadWord(q, q.base() + 8);
}
void Allocator::SetQuotaUsed(const Capability& q, Word used) {
  system_->machine().memory().StoreWord(q, q.base() + 8, used);
}
uint32_t Allocator::QuotaId(const Capability& q) const {
  return system_->machine().memory().LoadWord(q, q.base() + 12);
}

Capability Allocator::MakeHeapCap(Address payload, Word size) const {
  // Heap capabilities are global, deeply loadable/mutable (the holder can
  // always de-privilege before sharing, §3.2.5).
  return heap_root_.WithBounds(payload, size)
      .WithPermissions(PermissionSet::ReadWriteGlobal());
}

Capability Allocator::AllocateInternal(CompartmentCtx& ctx,
                                       const Capability& unsealed_q, Word size,
                                       Word timeout_cycles) {
  Machine& m = system_->machine();
  if (size == 0 || size > heap_size_) {
    return StatusCap(Status::kInvalidArgument);
  }
  const Word payload_size = AlignUp(std::max<Word>(size, 8), kGranuleBytes);
  const Word need = payload_size + kHeaderBytes;

  const Word limit = QuotaLimit(unsealed_q);
  const Word used = QuotaUsed(unsealed_q);
  if (used + need > limit) {
    ++quota_denials_;
    if (auto* tr = m.trace()) {
      // RawLoadWord, not QuotaId(): the trace path must not add costed
      // accesses or the cycle model would move when tracing is on.
      tr->OnQuotaExhausted(system_->current_thread_id(), ctx.compartment(),
                           m.memory().RawLoadWord(unsealed_q.base() + 12),
                           need);
    }
    if (auto* hr = m.forensics()) {
      // Unlike the trace hook above, forensics attributes the denial to the
      // compartment that *asked* for memory, not the alloc service the
      // heap_allocate export runs in — that is what the quota-exhaustion
      // detector keys on.
      hr->OnQuotaExhausted(system_->current_thread_id(),
                           AttributedCompartment(),
                           m.memory().RawLoadWord(unsealed_q.base() + 12),
                           need);
    }
    if (auto* cr = m.cov()) {
      cr->OnQuotaDenied(m.memory().RawLoadWord(unsealed_q.base() + 12), need);
    }
    return StatusCap(Status::kNoMemory);
  }

  const Cycles deadline =
      timeout_cycles == ~0u ? ~0ull : system_->Now() + timeout_cycles;

  for (;;) {
    ProcessQuarantine(kQuarantineDequeuePerOp);
    m.Tick(cost::kAllocBookkeeping);

    // First fit over the free list.
    Address fit = 0;
    bool found = false;
    for (Address candidate : free_chunks_) {
      if (ReadHeader(candidate).size >= need) {
        fit = candidate;
        found = true;
        break;
      }
    }
    if (found) {
      const Address chunk = fit;
      Header h = ReadHeader(chunk);
      free_chunks_.erase(chunk);
      // Split if the remainder can hold a viable chunk.
      if (h.size >= need + kMinChunk) {
        const Address rest = chunk + need;
        Header rest_h;
        rest_h.size = h.size - need;
        rest_h.prev_size = need;
        rest_h.state = ChunkState::kFree;
        WriteHeader(rest, rest_h);
        free_chunks_.insert(rest);
        // Fix the next-next chunk's prev_size.
        const Address after = rest + rest_h.size;
        if (after < heap_base_ + heap_size_) {
          Header after_h = ReadHeader(after);
          after_h.prev_size = rest_h.size;
          WriteHeader(after, after_h);
        }
        h.size = need;
      }
      h.state = ChunkState::kUsed;
      h.quota = static_cast<uint8_t>(QuotaId(unsealed_q));
      h.claims = 0;
      h.epoch = 0;
      WriteHeader(chunk, h);
      used_.insert(chunk);
      // Allocation-site provenance (native only; no guest cycles).
      AllocSite site;
      site.compartment = AttributedCompartment();
      site.seq = ++site_seq_;
      site.site_id =
          (static_cast<uint32_t>(site.compartment & 0xFFF) << 20) |
          static_cast<uint32_t>(site.seq & 0xFFFFF);
      site.allocated_at = system_->Now();
      site.payload = PayloadOf(chunk);
      site.size = h.size - kHeaderBytes;
      site.quota = h.quota;
      sites_[chunk] = site;
      live_native_ += h.size;
      SetQuotaUsed(unsealed_q, QuotaUsed(unsealed_q) + h.size);
      if (auto* tr = m.trace()) {
        tr->OnHeapAlloc(system_->current_thread_id(), ctx.compartment(),
                        h.quota, h.size);
      }
      if (auto* cr = m.cov()) {
        cr->OnHeapAlloc(h.quota, h.size);
      }
      // Freed memory was zeroed in free(); exclusive allocator access
      // guarantees the zeros persisted (§3.1.3 "Zeroing").
      return MakeHeapCap(PayloadOf(chunk), payload_size);
    }

    // No fit. If quarantine holds memory, wait for the revocation pass and
    // retry; otherwise the heap is simply exhausted.
    if (quarantine_.empty() || system_->Now() >= deadline) {
      return StatusCap(quarantine_.empty() ? Status::kNoMemory
                                           : Status::kTimedOut);
    }
    if (!system_->WaitForRevokerPass(deadline)) {
      return StatusCap(Status::kTimedOut);
    }
    // Drain everything eligible after a completed pass.
    ProcessQuarantine(static_cast<int>(quarantine_.size()));
  }
}

Capability Allocator::HeapAllocate(CompartmentCtx& ctx,
                                   const Capability& alloc_cap, Word size,
                                   Word timeout_cycles) {
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag()) {
    return StatusCap(Status::kPermissionDenied);
  }
  return AllocateInternal(ctx, q, size, timeout_cycles);
}

void Allocator::ReleaseChunk(Address chunk, const Header& header) {
  Machine& m = system_->machine();
  Memory& mem = m.memory();
  Header h = header;
  const Address payload = PayloadOf(chunk);
  const Word payload_size = h.size - kHeaderBytes;
  // Erase the object (§3.1.3 "Zeroing") and mark every granule revoked: the
  // load filter makes dangling capabilities unusable as soon as free returns.
  mem.ZeroRange(heap_root_, payload, payload_size);
  mem.revocation().SetRange(payload, payload_size, true);
  // Bitmap painting cost: one word store per 32 granules.
  m.Tick(cost::kStoreWord * (payload_size / kGranuleBytes / 32 + 1));
  h.state = ChunkState::kQuarantined;
  h.epoch = system_->machine().revoker().SafeEpochForFreeNow();
  WriteHeader(chunk, h);
  used_.erase(chunk);
  quarantine_.push_back(chunk);
  // ReleaseChunk is reached from heap_free, heap_free_all, micro-reboot
  // and deferred ephemeral-claim releases; the compartment attributed is
  // whichever one the current thread is executing (or -1 from the kernel).
  const int thread = system_->current_thread_id();
  const int comp =
      thread >= 0 ? system_->threads()[thread].current_compartment : -1;
  live_native_ -= std::min(live_native_, header.size);
  quarantined_native_ += header.size;
  if (auto site_it = sites_.find(chunk); site_it != sites_.end()) {
    site_it->second.state = SiteState::kQuarantined;
    // Attribute the free to the alloc service's caller (heap_free is a
    // cross-compartment call), falling back to the executing compartment
    // for kernel/micro-reboot driven releases.
    site_it->second.freed_by = AttributedCompartment();
    site_it->second.freed_at = system_->Now();
  }
  if (auto* tr = m.trace()) {
    tr->OnHeapFree(thread, comp, header.quota, header.size);
  }
  if (auto* cr = m.cov()) {
    cr->OnHeapFree(header.quota, header.size);
  }
  system_->machine().revoker().StartSweep();
}

Status Allocator::HeapFree(CompartmentCtx& ctx, const Capability& alloc_cap,
                           const Capability& ptr) {
  Machine& m = system_->machine();
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag()) {
    return Status::kPermissionDenied;
  }
  if (!ptr.tag() || ptr.IsSealed()) {
    return Status::kInvalidArgument;
  }
  const Address chunk = ptr.base() - kHeaderBytes;
  if (!used_.count(chunk)) {
    return Status::kInvalidArgument;
  }
  Header h = ReadHeader(chunk);
  const uint32_t qid = QuotaId(q);

  auto claims_it = claims_.find(chunk);
  const bool owner = (h.quota == qid) && !(h.flags & 1);
  const bool claimant =
      claims_it != claims_.end() && claims_it->second.count(qid) > 0;
  if (!owner && !claimant) {
    // heap_free requires an allocation capability matching the one used to
    // allocate (or claim) the object (§3.2.2). A second owner-free is a
    // double free.
    return (h.quota == qid) ? Status::kInvalidArgument
                            : Status::kPermissionDenied;
  }

  if (claimant) {
    // Release one claim held under this quota (§3.2.5 TOCTOU defence);
    // freeing with the capability used to claim releases the claim first.
    m.Tick(cost::kClaimWork);
    if (--claims_it->second[qid] == 0) {
      claims_it->second.erase(qid);
    }
    if (claims_it->second.empty()) {
      claims_.erase(claims_it);
    }
    SetQuotaUsed(q, QuotaUsed(q) - h.size);
    h.claims--;
  } else {
    h.flags |= 1;  // owner reference released
    SetQuotaUsed(q, QuotaUsed(q) - h.size);
  }
  WriteHeader(chunk, h);

  // The memory is released only once the owner freed it and all claims are
  // gone (§3.2.2).
  if (!(h.flags & 1) || h.claims > 0) {
    return Status::kOk;
  }
  // Ephemeral claims defer the release until the claiming thread's next
  // compartment call (§3.2.5).
  if (system_->switcher().IsEphemerallyClaimed(PayloadOf(chunk))) {
    pending_free_.insert(chunk);
    return Status::kOk;
  }
  pending_free_.erase(chunk);
  ReleaseChunk(chunk, h);
  ProcessQuarantine(kQuarantineDequeuePerOp);
  m.Tick(cost::kAllocBookkeeping);
  return Status::kOk;
}

void Allocator::RetryPendingFrees() {
  if (pending_free_.empty()) {
    return;
  }
  std::vector<Address> ready;
  for (Address chunk : pending_free_) {
    if (!system_->switcher().IsEphemerallyClaimed(PayloadOf(chunk))) {
      ready.push_back(chunk);
    }
  }
  for (Address chunk : ready) {
    pending_free_.erase(chunk);
    ReleaseChunk(chunk, ReadHeader(chunk));
  }
}

Status Allocator::HeapClaim(CompartmentCtx& ctx, const Capability& alloc_cap,
                            const Capability& ptr) {
  // A claim prevents the allocator from freeing the object until the claim
  // is released; it requires a quota that can account for the object
  // (§3.2.5).
  system_->machine().Tick(cost::kClaimWork);
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag()) {
    return Status::kPermissionDenied;
  }
  if (!ptr.tag() || ptr.IsSealed()) {
    return Status::kInvalidArgument;
  }
  const Address chunk = ptr.base() - kHeaderBytes;
  if (!used_.count(chunk)) {
    return Status::kInvalidArgument;
  }
  Header h = ReadHeader(chunk);
  const Word limit = QuotaLimit(q);
  if (QuotaUsed(q) + h.size > limit) {
    return Status::kNoMemory;
  }
  SetQuotaUsed(q, QuotaUsed(q) + h.size);
  claims_[chunk][QuotaId(q)]++;
  h.claims++;
  WriteHeader(chunk, h);
  return Status::kOk;
}

bool Allocator::HeapCanFree(CompartmentCtx& ctx, const Capability& alloc_cap,
                            const Capability& ptr) {
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag() || !ptr.tag() || ptr.IsSealed()) {
    return false;
  }
  const Address chunk = ptr.base() - kHeaderBytes;
  if (!used_.count(chunk)) {
    return false;
  }
  const Header h = ReadHeader(chunk);
  return h.quota == QuotaId(q);
}

Word Allocator::QuotaRemaining(CompartmentCtx& ctx,
                               const Capability& alloc_cap) {
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag()) {
    return 0;
  }
  const Word limit = QuotaLimit(q);
  const Word used = QuotaUsed(q);
  return used > limit ? 0 : limit - used;
}

Word Allocator::HeapFreeAll(CompartmentCtx& ctx, const Capability& alloc_cap) {
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag()) {
    return 0;
  }
  const Word released = FreeAllForQuota(QuotaId(q));
  // All owned allocations and claims are gone: the quota is whole again.
  SetQuotaUsed(q, 0);
  return released;
}

Word Allocator::FreeAllForQuota(uint32_t quota_id) {
  Word released = 0;
  // Drop every claim this quota holds on other quotas' chunks.
  for (auto it = claims_.begin(); it != claims_.end();) {
    auto cit = it->second.find(quota_id);
    if (cit != it->second.end()) {
      Header h = ReadHeader(it->first);
      h.claims -= static_cast<uint8_t>(cit->second);
      it->second.erase(cit);
      WriteHeader(it->first, h);
      if ((h.flags & 1) && h.claims == 0 && used_.count(it->first)) {
        ReleaseChunk(it->first, h);
      }
    }
    it = it->second.empty() ? claims_.erase(it) : std::next(it);
  }
  std::vector<Address> victims;
  for (Address chunk : used_) {
    const Header h = ReadHeader(chunk);
    if (h.quota == quota_id && !(h.flags & 1)) {
      victims.push_back(chunk);
    }
  }
  for (Address chunk : victims) {
    Header h = ReadHeader(chunk);
    // Drop all claims held by this quota, then the owner reference.
    auto it = claims_.find(chunk);
    if (it != claims_.end()) {
      auto cit = it->second.find(quota_id);
      if (cit != it->second.end()) {
        h.claims -= static_cast<uint8_t>(cit->second);
        it->second.erase(cit);
      }
      if (it->second.empty()) {
        claims_.erase(it);
      }
    }
    h.flags |= 1;
    WriteHeader(chunk, h);
    if (h.claims == 0) {
      released += h.size;
      ReleaseChunk(chunk, h);
    }
  }
  ProcessQuarantine(kQuarantineDequeuePerOp);
  return released;
}

void Allocator::ProcessQuarantine(int max_items) {
  const uint32_t epoch = system_->machine().revoker().epoch();
  for (int i = 0; i < max_items && !quarantine_.empty(); ++i) {
    const Address chunk = quarantine_.front();
    const Header h = ReadHeader(chunk);
    if (h.epoch > epoch) {
      break;  // not yet swept; FIFO order means nothing behind is ready
    }
    quarantine_.pop_front();
    quarantined_native_ -= std::min(quarantined_native_, h.size);
    if (auto site_it = sites_.find(chunk); site_it != sites_.end()) {
      // The chunk rejoins the free list: retire its site (bounded history)
      // so a late fault through a stale capability can still be attributed.
      site_it->second.state = SiteState::kReused;
      retired_.push_back(site_it->second);
      while (retired_.size() > kRetiredSites) {
        retired_.pop_front();
      }
      sites_.erase(site_it);
    }
    // Clear the revocation bits: the sweep guarantees no stale capabilities
    // survive anywhere in memory.
    system_->machine().memory().revocation().SetRange(
        PayloadOf(chunk), h.size - kHeaderBytes, false);
    system_->machine().Tick(
        cost::kStoreWord * ((h.size - kHeaderBytes) / kGranuleBytes / 32 + 1));
    CoalesceAndFree(chunk);
  }
}

void Allocator::CoalesceAndFree(Address chunk) {
  Header h = ReadHeader(chunk);
  h.state = ChunkState::kFree;
  h.quota = 0;
  h.flags = 0;
  h.epoch = 0;

  // Merge with the next chunk if free.
  Address next = chunk + h.size;
  if (next < heap_base_ + heap_size_) {
    Header nh = ReadHeader(next);
    if (nh.state == ChunkState::kFree && free_chunks_.count(next)) {
      free_chunks_.erase(next);
      h.size += nh.size;
    }
  }
  // Merge with the previous chunk if free.
  if (h.prev_size != 0) {
    const Address prev = chunk - h.prev_size;
    Header ph = ReadHeader(prev);
    if (ph.state == ChunkState::kFree && free_chunks_.count(prev)) {
      free_chunks_.erase(prev);
      ph.size += h.size;
      chunk = prev;
      h = ph;
      h.state = ChunkState::kFree;
    }
  }
  WriteHeader(chunk, h);
  // Fix the following chunk's prev_size.
  const Address after = chunk + h.size;
  if (after < heap_base_ + heap_size_) {
    Header ah = ReadHeader(after);
    ah.prev_size = h.size;
    WriteHeader(after, ah);
  }
  free_chunks_.insert(chunk);
}

// --- Token API backing (§3.2.1) ---

Capability Allocator::TokenKeyNew(CompartmentCtx& ctx) {
  system_->machine().Tick(cost::kNewSealingKey);
  const uint32_t id = system_->token().NextTypeId();
  return Capability::MakeSealingAuthority(id, 1);
}

Capability Allocator::TokenObjNew(CompartmentCtx& ctx,
                                  const Capability& alloc_cap,
                                  const Capability& key, Word size) {
  if (!TokenService::ValidKey(key, Permission::kSeal)) {
    return StatusCap(Status::kPermissionDenied);
  }
  const Capability q = UnsealAllocCap(alloc_cap);
  if (!q.tag()) {
    return StatusCap(Status::kPermissionDenied);
  }
  system_->machine().Tick(cost::kSealedAllocWork);
  const Capability raw = AllocateInternal(ctx, q, size + 8, ~0u);
  if (!raw.tag()) {
    return raw;  // status propagated
  }
  Memory& mem = system_->machine().memory();
  mem.StoreWord(heap_root_, raw.base(), key.cursor());  // virtual type header
  mem.StoreWord(heap_root_, raw.base() + 4, size);
  if (auto* cr = system_->machine().cov()) {
    cr->OnSealingUse(AttributedCompartment(), key.cursor(), /*unseal=*/false);
  }
  return system_->token().SealWithHardwareType(raw);
}

Status Allocator::TokenObjDestroy(CompartmentCtx& ctx,
                                  const Capability& alloc_cap,
                                  const Capability& key,
                                  const Capability& sealed_obj) {
  if (!TokenService::ValidKey(key, Permission::kUnseal)) {
    return Status::kPermissionDenied;
  }
  const Capability unsealed = system_->token().UnsealHardwareType(sealed_obj);
  if (!unsealed.tag()) {
    return Status::kInvalidArgument;
  }
  Memory& mem = system_->machine().memory();
  const Word vtype = mem.LoadWord(heap_root_, unsealed.base());
  if (vtype != key.cursor()) {
    return Status::kPermissionDenied;
  }
  if (auto* cr = system_->machine().cov()) {
    cr->OnSealingUse(AttributedCompartment(), key.cursor(), /*unseal=*/true);
  }
  // The sealed allocation requires both the matching allocation capability
  // and the sealing key to deallocate (§3.2.3).
  return HeapFree(ctx, alloc_cap, unsealed);
}

// --- Introspection ---

Word Allocator::FreeBytes() const {
  Word total = 0;
  for (Address chunk : free_chunks_) {
    total += ReadHeader(chunk).size;
  }
  return total;
}

Word Allocator::QuarantinedBytes() const {
  Word total = 0;
  for (Address chunk : quarantine_) {
    total += ReadHeader(chunk).size;
  }
  return total;
}

Word Allocator::LargestFreeChunk() const {
  Word best = 0;
  for (Address chunk : free_chunks_) {
    best = std::max(best, ReadHeader(chunk).size);
  }
  return best;
}

const Allocator::AllocSite* Allocator::ProvenanceFor(Address addr) const {
  if (!sites_.empty()) {
    auto it = sites_.upper_bound(addr);
    if (it != sites_.begin()) {
      const AllocSite& s = std::prev(it)->second;
      if (addr >= s.payload && addr < s.payload + s.size) {
        return &s;
      }
    }
  }
  for (auto rit = retired_.rbegin(); rit != retired_.rend(); ++rit) {
    if (addr >= rit->payload && addr < rit->payload + rit->size) {
      return &*rit;
    }
  }
  return nullptr;
}

// --- Snapshot (DESIGN.md §10) ---------------------------------------------

namespace {
void SerializeSite(cheriot::snap::Writer& w, const Allocator::AllocSite& s) {
  w.U32(s.site_id);
  w.I32(s.compartment);
  w.U64(s.seq);
  w.U64(s.allocated_at);
  w.U32(s.payload);
  w.U32(s.size);
  w.U8(s.quota);
  w.U8(static_cast<uint8_t>(s.state));
  w.I32(s.freed_by);
  w.U64(s.freed_at);
}
Allocator::AllocSite RestoreSite(cheriot::snap::Reader& r) {
  Allocator::AllocSite s;
  s.site_id = r.U32();
  s.compartment = r.I32();
  s.seq = r.U64();
  s.allocated_at = r.U64();
  s.payload = r.U32();
  s.size = r.U32();
  s.quota = r.U8();
  s.state = static_cast<Allocator::SiteState>(r.U8());
  s.freed_by = r.I32();
  s.freed_at = r.U64();
  return s;
}
template <typename Set>
void SerializeAddressSet(cheriot::snap::Writer& w, const Set& set) {
  w.U32(static_cast<uint32_t>(set.size()));
  for (Address a : set) {
    w.U32(a);
  }
}
void RestoreAddressSet(cheriot::snap::Reader& r, std::set<Address>& set) {
  set.clear();
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; ++i) {
    set.insert(r.U32());
  }
}
}  // namespace

void Allocator::SerializeState(snap::Writer& w) const {
  SerializeAddressSet(w, free_chunks_);
  SerializeAddressSet(w, used_);
  w.U32(static_cast<uint32_t>(quarantine_.size()));
  for (Address a : quarantine_) {
    w.U32(a);
  }
  w.U32(static_cast<uint32_t>(claims_.size()));
  for (const auto& [payload, per_quota] : claims_) {
    w.U32(payload);
    w.U32(static_cast<uint32_t>(per_quota.size()));
    for (const auto& [quota, count] : per_quota) {
      w.U32(quota);
      w.U32(count);
    }
  }
  SerializeAddressSet(w, pending_free_);
  w.U32(static_cast<uint32_t>(sites_.size()));
  for (const auto& [chunk, site] : sites_) {
    w.U32(chunk);
    SerializeSite(w, site);
  }
  w.U32(static_cast<uint32_t>(retired_.size()));
  for (const AllocSite& site : retired_) {
    SerializeSite(w, site);
  }
  w.U64(site_seq_);
  w.I32(service_compartment_);
  w.U32(live_native_);
  w.U32(quarantined_native_);
}

void Allocator::RestoreState(snap::Reader& r) {
  RestoreAddressSet(r, free_chunks_);
  RestoreAddressSet(r, used_);
  quarantine_.clear();
  const uint32_t quarantined = r.U32();
  for (uint32_t i = 0; i < quarantined; ++i) {
    quarantine_.push_back(r.U32());
  }
  claims_.clear();
  const uint32_t claims = r.U32();
  for (uint32_t i = 0; i < claims; ++i) {
    const Address payload = r.U32();
    auto& per_quota = claims_[payload];
    const uint32_t quotas = r.U32();
    for (uint32_t j = 0; j < quotas; ++j) {
      const uint32_t quota = r.U32();
      per_quota[quota] = r.U32();
    }
  }
  RestoreAddressSet(r, pending_free_);
  sites_.clear();
  const uint32_t sites = r.U32();
  for (uint32_t i = 0; i < sites; ++i) {
    const Address chunk = r.U32();
    sites_[chunk] = RestoreSite(r);
  }
  retired_.clear();
  const uint32_t retired = r.U32();
  for (uint32_t i = 0; i < retired; ++i) {
    retired_.push_back(RestoreSite(r));
  }
  site_seq_ = r.U64();
  service_compartment_ = r.I32();
  live_native_ = r.U32();
  quarantined_native_ = r.U32();
}

}  // namespace cheriot

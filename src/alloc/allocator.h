// The shared-heap memory allocator (§3.1.3): spatially- and temporally-safe
// heap shared by all compartments, with allocation capabilities & quotas
// (§3.2.2), quarantine batched against the hardware revoker, zero-on-free,
// claims and ephemeral claims (§3.2.5), and sealed-object allocation
// backing the token API (§3.2.1).
//
// Chunk header (16 bytes, in-band, at payload-16):
//   +0  u32 chunk size including header
//   +4  u32 previous chunk size (for coalescing); 0 for the first chunk
//   +8  u32 state(8) | owner_quota(8) | claim_count(8) | flags(8)
//   +12 u32 safe-reuse revoker epoch (quarantined chunks)
#ifndef SRC_ALLOC_ALLOCATOR_H_
#define SRC_ALLOC_ALLOCATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/cap/capability.h"
#include "src/loader/loader.h"

namespace cheriot {

class System;
class CompartmentCtx;

namespace snap {
class Writer;
class Reader;
}  // namespace snap

class Allocator {
 public:
  static constexpr Address kHeaderBytes = 16;
  static constexpr Address kMinChunk = 32;
  // Quarantine entries examined per malloc/free (§3.1.3: "a small, constant
  // number"; more than one so the quarantine eventually drains).
  static constexpr int kQuarantineDequeuePerOp = 2;

  enum class ChunkState : uint8_t { kFree = 0, kUsed = 1, kQuarantined = 2 };

  // --- Allocation-site provenance (src/health, DESIGN.md §9) ---------------
  // Every live heap object carries a compact site id (allocating compartment
  // + allocator-wide sequence number) in a native-only table, so crash
  // forensics can answer "who allocated the object this faulting capability
  // points into, and was it freed?". Purely observational: maintained with
  // zero guest cycles and zero simulated-memory accesses.
  enum class SiteState : uint8_t {
    kLive = 0,         // allocated, not yet freed
    kQuarantined = 1,  // freed; revocation bits painted, awaiting sweep
    kReused = 2,       // freed and returned to the free list
  };
  struct AllocSite {
    uint32_t site_id = 0;      // (compartment & 0xFFF) << 20 | (seq & 0xFFFFF)
    int32_t compartment = -1;  // allocating compartment
    uint64_t seq = 0;          // allocator-wide allocation sequence number
    Cycles allocated_at = 0;   // guest cycles at allocation
    Address payload = 0;
    Word size = 0;             // payload bytes (chunk size minus header)
    uint8_t quota = 0;
    SiteState state = SiteState::kLive;
    int32_t freed_by = -1;     // compartment that freed it (-1 = not freed)
    Cycles freed_at = 0;
  };
  // Retired (reused) sites kept for late-fault attribution.
  static constexpr size_t kRetiredSites = 64;

  explicit Allocator(System* system) : system_(system) {}
  void Init();

  // --- Compartment-call entry points (run on the caller's thread inside the
  // "alloc" compartment) ---
  Capability HeapAllocate(CompartmentCtx& ctx, const Capability& alloc_cap,
                          Word size, Word timeout_cycles);
  Status HeapFree(CompartmentCtx& ctx, const Capability& alloc_cap,
                  const Capability& ptr);
  Status HeapClaim(CompartmentCtx& ctx, const Capability& alloc_cap,
                   const Capability& ptr);
  bool HeapCanFree(CompartmentCtx& ctx, const Capability& alloc_cap,
                   const Capability& ptr);
  Word QuotaRemaining(CompartmentCtx& ctx, const Capability& alloc_cap);
  // Frees every allocation owned by the quota (micro-reboot step 3).
  // Returns bytes released.
  Word HeapFreeAll(CompartmentCtx& ctx, const Capability& alloc_cap);

  // --- Token API backing (§3.2.1) ---
  Capability TokenKeyNew(CompartmentCtx& ctx);
  Capability TokenObjNew(CompartmentCtx& ctx, const Capability& alloc_cap,
                         const Capability& key, Word size);
  Status TokenObjDestroy(CompartmentCtx& ctx, const Capability& alloc_cap,
                         const Capability& key, const Capability& sealed_obj);

  // --- Kernel-side (micro-reboot, hazard-deferred frees) ---
  Word FreeAllForQuota(uint32_t quota_id);
  void RetryPendingFrees();

  // --- Introspection (tests & benches) ---
  Word FreeBytes() const;
  Word QuarantinedBytes() const;
  size_t UsedChunks() const { return used_.size(); }
  Word LargestFreeChunk() const;

  // --- Provenance read side (health monitor, forensics capture) ------------
  // Site whose payload contains `addr`: current sites first, then retired
  // ones newest-first. Null when the address is not heap-attributable.
  // Zero-cost observer — never reads simulated memory or ticks the clock
  // (unlike FreeBytes()/QuarantinedBytes(), which are costed).
  const AllocSite* ProvenanceFor(Address addr) const;
  const std::map<Address, AllocSite>& sites() const { return sites_; }
  const std::deque<AllocSite>& retired_sites() const { return retired_; }
  uint64_t allocation_count() const { return site_seq_; }
  // Allocations refused for quota exhaustion. Native-only observability
  // counter (fleet metrics time-series); deliberately NOT serialized —
  // restore replays regenerate it exactly.
  uint64_t quota_denials() const { return quota_denials_; }
  // Native byte counters mirroring the in-band headers.
  Word LiveBytesNative() const { return live_native_; }
  Word QuarantinedBytesNative() const { return quarantined_native_; }

  // Unseals an allocation capability; returns untagged cap on failure.
  Capability UnsealAllocCap(const Capability& alloc_cap) const;

  // Snapshot save/restore (DESIGN.md §10): the native bookkeeping mirrors
  // and the alloc-site provenance table. The in-band chunk headers live in
  // SRAM (memory section); heap_root_/heap_base_/heap_size_ are re-derived
  // by Init() from boot info on the restore path, so only the mirrors that
  // accumulate at run time are serialised here.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  struct Header {
    Word size = 0;
    Word prev_size = 0;
    ChunkState state = ChunkState::kFree;
    uint8_t quota = 0;
    uint8_t claims = 0;
    uint8_t flags = 0;
    Word epoch = 0;
  };

  Header ReadHeader(Address chunk) const;
  void WriteHeader(Address chunk, const Header& h);
  Address PayloadOf(Address chunk) const { return chunk + kHeaderBytes; }

  // Quota bookkeeping lives in the sealed payload (simulated memory).
  Word QuotaLimit(const Capability& unsealed) const;
  Word QuotaUsed(const Capability& unsealed) const;
  void SetQuotaUsed(const Capability& unsealed, Word used);
  uint32_t QuotaId(const Capability& unsealed) const;

  // Internal allocation path shared by HeapAllocate / TokenObjNew.
  Capability AllocateInternal(CompartmentCtx& ctx, const Capability& unsealed_q,
                              Word size, Word timeout_cycles);
  // Actually releases a used chunk into quarantine (zero + revoke).
  void ReleaseChunk(Address chunk, const Header& h);
  void ProcessQuarantine(int max_items);
  void CoalesceAndFree(Address chunk);
  Capability MakeHeapCap(Address payload, Word size) const;

  // Compartment accountable for the current heap operation. heap_* exports
  // execute inside the alloc service compartment, so the party to attribute
  // (site provenance, quota forensics) is the caller that entered it — read
  // from the thread's native compartment-stack mirror, never from simulated
  // memory. Falls back to current_compartment for kernel-driven releases.
  int AttributedCompartment();
  int ServiceCompartmentId();

  System* system_;
  Capability heap_root_;  // privileged, revocation-exempt (§3.1.3)
  Address heap_base_ = 0;
  Address heap_size_ = 0;

  // Native bookkeeping mirrors (headers remain authoritative in-band).
  std::set<Address> free_chunks_;  // ordered by address (first-fit)
  std::set<Address> used_;
  std::deque<Address> quarantine_;
  // Claims: payload -> (quota id -> count). The header tracks the total.
  std::map<Address, std::map<uint32_t, uint32_t>> claims_;
  // Frees deferred by ephemeral claims (§3.2.5).
  std::set<Address> pending_free_;

  // Allocation-site provenance: chunk address -> site, plus a bounded deque
  // of retired sites (chunks that left quarantine) newest-last. Native-only.
  std::map<Address, AllocSite> sites_;
  std::deque<AllocSite> retired_;
  uint64_t site_seq_ = 0;
  uint64_t quota_denials_ = 0;
  int service_compartment_ = -2;  // -2 = not yet resolved from boot info
  Word live_native_ = 0;
  Word quarantined_native_ = 0;
};

}  // namespace cheriot

#endif  // SRC_ALLOC_ALLOCATOR_H_

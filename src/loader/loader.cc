#include "src/loader/loader.h"

#include <cstring>
#include <stdexcept>

#include "src/base/log.h"
#include "src/snap/wire.h"

namespace cheriot {

namespace {

// Splits "compartment.export" into its two parts.
std::pair<std::string, std::string> SplitQualified(const std::string& q) {
  const size_t dot = q.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == q.size()) {
    throw std::invalid_argument("malformed qualified import name: " + q);
  }
  return {q.substr(0, dot), q.substr(dot + 1)};
}

int FindExport(const std::vector<ExportDef>& exports, const std::string& name) {
  for (size_t i = 0; i < exports.size(); ++i) {
    if (exports[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

CompartmentRuntime* BootInfo::FindCompartment(const std::string& name) {
  for (auto& c : compartments) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

int BootInfo::CompartmentIndex(const std::string& name) const {
  for (size_t i = 0; i < compartments.size(); ++i) {
    if (compartments[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::unique_ptr<BootInfo> Loader::Load(Machine& machine, FirmwareImage image) {
  auto boot = std::make_unique<BootInfo>();
  Memory& mem = machine.memory();
  const Address sram_base = mem.sram_base();
  const Address sram_top = mem.sram_top();

  // The loader holds the omnipotent roots (§3.1.1). These never escape this
  // function except as refined capabilities.
  const Capability root_rw = Capability::RootReadWrite(sram_base, sram_top);
  const Capability root_x = Capability::RootExecute(sram_base, sram_top);
  const Capability root_seal = Capability::RootSealing();

  // --- Invariant checks -----------------------------------------------
  for (size_t i = 0; i < image.compartments.size(); ++i) {
    for (size_t j = i + 1; j < image.compartments.size(); ++j) {
      if (image.compartments[i].name == image.compartments[j].name) {
        throw std::invalid_argument("duplicate compartment: " +
                                    image.compartments[i].name);
      }
    }
  }
  for (const auto& lib : image.libraries) {
    // Shared libraries must have no mutable globals (§3); in this model
    // libraries simply have no globals at all, so the invariant is
    // structural. Entry-point definitions are still validated.
    if (lib.exports.empty()) {
      LOG_WARN("library %s exports nothing", lib.name.c_str());
    }
  }

  Address cursor = sram_base + 64;  // reserved vector space

  auto reserve = [&](Address size, Address align) {
    cursor = AlignUp(cursor, align);
    const Address at = cursor;
    if (static_cast<uint64_t>(cursor) + size > sram_top) {
      throw std::invalid_argument("firmware image does not fit in SRAM");
    }
    cursor += size;
    return at;
  };

  // --- Code region -------------------------------------------------------
  // Code bytes are modelled (0xCE fill); PCC bounds and auditing are real.
  for (size_t i = 0; i < image.compartments.size(); ++i) {
    CompartmentRuntime rt;
    rt.id = static_cast<int>(i);
    rt.name = image.compartments[i].name;
    rt.code_size = image.compartments[i].code_size;
    rt.code_base = reserve(rt.code_size, 16);
    std::memset(mem.raw(rt.code_base), 0xCE, rt.code_size);
    boot->compartments.push_back(std::move(rt));
    boot->stats.code_bytes += image.compartments[i].code_size;
  }
  for (size_t i = 0; i < image.libraries.size(); ++i) {
    LibraryRuntime lib;
    lib.id = static_cast<int>(i);
    lib.name = image.libraries[i].name;
    lib.code_size = image.libraries[i].code_size;
    lib.code_base = reserve(lib.code_size, 16);
    std::memset(mem.raw(lib.code_base), 0xCE, lib.code_size);
    lib.code_cap = root_x.WithBounds(lib.code_base, lib.code_size);
    boot->libraries.push_back(std::move(lib));
    boot->stats.code_bytes += image.libraries[i].code_size;
  }

  // --- Metadata region: descriptors, export tables, import tables --------
  for (size_t i = 0; i < image.compartments.size(); ++i) {
    auto& rt = boot->compartments[i];
    const auto& def = image.compartments[i];
    Address meta = 0;
    meta += kCompartmentDescriptorBytes;
    rt.export_table = reserve(
        kExportTableHeaderBytes + kExportEntryBytes * def.exports.size(), 8);
    meta += kExportTableHeaderBytes + kExportEntryBytes * def.exports.size();
    const size_t import_count =
        def.compartment_imports.size() + def.library_imports.size() +
        def.mmio_imports.size() + def.alloc_caps.size() +
        def.sealed_objects.size() + def.sealing_types_owned.size();
    rt.import_table = reserve(kImportEntryBytes * import_count, 8);
    reserve(kCompartmentDescriptorBytes, 8);
    meta += kImportEntryBytes * import_count;
    boot->stats.metadata_bytes += meta;
    boot->stats.per_compartment_metadata[rt.name] = static_cast<Address>(meta);
    boot->export_table_index[rt.export_table] = rt.id;
  }

  // --- Static sealed objects region ---------------------------------------
  // Two kinds: allocation capabilities (allocator otype) and user-defined
  // sealed objects (token otype + virtual type header). Payload addresses
  // are assigned now, contents written after all regions are placed.
  struct PendingSealed {
    int compartment;
    bool is_alloc_cap;
    size_t index;  // into alloc_caps or sealed_objects
    Address payload;
    uint32_t size;
  };
  std::vector<PendingSealed> pending_sealed;
  uint32_t quota_id_counter = 0;
  for (size_t i = 0; i < image.compartments.size(); ++i) {
    const auto& def = image.compartments[i];
    for (size_t k = 0; k < def.alloc_caps.size(); ++k) {
      const Address at = reserve(16, 8);
      pending_sealed.push_back({static_cast<int>(i), true, k, at, 16});
      boot->stats.sealed_object_bytes += 16;
      (void)quota_id_counter;
    }
    for (size_t k = 0; k < def.sealed_objects.size(); ++k) {
      const uint32_t size = kSealedObjectHeaderBytes +
                            static_cast<uint32_t>(
                                AlignUp(static_cast<Address>(
                                            def.sealed_objects[k].payload.size()),
                                        kGranuleBytes));
      const Address at = reserve(size, 8);
      pending_sealed.push_back({static_cast<int>(i), false, k, at, size});
      boot->stats.sealed_object_bytes += size;
    }
  }

  // --- Globals -------------------------------------------------------------
  for (size_t i = 0; i < image.compartments.size(); ++i) {
    auto& rt = boot->compartments[i];
    rt.globals_size = image.compartments[i].globals_size;
    rt.globals_base = reserve(rt.globals_size, 8);
    std::memset(mem.raw(rt.globals_base), 0, rt.globals_size);
    boot->stats.globals_bytes += rt.globals_size;
  }

  // --- Thread stacks and trusted stacks ------------------------------------
  for (const auto& tdef : image.threads) {
    ThreadLayout t;
    t.name = tdef.name;
    t.priority = tdef.priority;
    t.stack_size = AlignUp(tdef.stack_size, kGranuleBytes);
    t.stack_base = reserve(t.stack_size, kGranuleBytes);
    std::memset(mem.raw(t.stack_base), 0, t.stack_size);
    t.max_frames = tdef.trusted_stack_frames;
    t.trusted_stack_size =
        AlignUp(kTrustedStackHeaderBytes + kRegisterSaveAreaBytes +
                    kTrustedStackFrameBytes * tdef.trusted_stack_frames,
                kGranuleBytes);
    t.trusted_stack_base = reserve(t.trusted_stack_size, kGranuleBytes);
    const auto [comp_name, export_name] = SplitQualified(tdef.entry);
    t.entry_compartment = boot->CompartmentIndex(comp_name);
    if (t.entry_compartment < 0) {
      throw std::invalid_argument("thread entry compartment not found: " +
                                  comp_name);
    }
    t.entry_export = FindExport(
        image.compartments[t.entry_compartment].exports, export_name);
    if (t.entry_export < 0) {
      throw std::invalid_argument("thread entry export not found: " +
                                  tdef.entry);
    }
    boot->stats.stack_bytes += t.stack_size;
    boot->stats.trusted_stack_bytes += t.trusted_stack_size;
    boot->threads.push_back(t);
  }

  // --- Loader scratch + heap ------------------------------------------------
  // The loader and the firmware metadata it consumes live in SRAM that is
  // erased after boot and becomes heap (§3.1.1). Scratch is proportional to
  // the amount of metadata processed.
  const Address scratch_size = AlignUp(
      512 + 64 * static_cast<Address>(image.compartments.size() +
                                      image.libraries.size()),
      kGranuleBytes);
  const Address scratch_base = reserve(scratch_size, kGranuleBytes);
  boot->stats.loader_scratch_bytes = scratch_size;

  boot->heap_base = scratch_base;  // scratch is erased into the heap below
  boot->heap_size = sram_top - boot->heap_base;
  boot->stats.heap_bytes = boot->heap_size;

  // --- Privileged capabilities ----------------------------------------------
  boot->heap_root =
      root_rw.WithBounds(boot->heap_base, boot->heap_size)
          .WithPermissions(PermissionSet::All()
                               .Without(Permission::kExecute)
                               .Without(Permission::kSeal)
                               .Without(Permission::kUnseal));
  boot->switcher_seal_key = root_seal.WithAddress(
      static_cast<Address>(OType::kSwitcherCompartment));
  boot->allocator_seal_key =
      root_seal.WithAddress(static_cast<Address>(OType::kAllocatorQuota));
  boot->token_seal_key =
      root_seal.WithAddress(static_cast<Address>(OType::kTokenApi));
  boot->globals_root = root_rw;  // switcher-held, for globals reset + stacks

  // Trusted stacks are accessible exclusively to the switcher (§3.1.2).
  boot->trusted_stack_root = root_rw;

  // --- Compartment capability pairs -----------------------------------------
  for (size_t i = 0; i < image.compartments.size(); ++i) {
    auto& rt = boot->compartments[i];
    rt.def = &image.compartments[i];
    rt.pcc = root_x.WithBounds(rt.code_base, rt.code_size)
                 .WithoutPermission(Permission::kAccessSystemRegisters);
    rt.cgp = root_rw.WithBounds(rt.globals_base, rt.globals_size)
                 .WithPermissions(PermissionSet::ReadWriteGlobal())
                 // Globals may hold local (stack-derived) caps? No: only the
                 // stack has permit-store-local (§2.1), so CGP lacks it.
                 .WithoutPermission(Permission::kStoreLocal);
  }

  // --- Export tables ----------------------------------------------------------
  for (auto& rt : boot->compartments) {
    const auto& def = *rt.def;
    // Header: code-cap summary + compartment id (consumed by the switcher).
    mem.RawStoreWord(rt.export_table, rt.code_base);
    mem.RawStoreWord(rt.export_table + 4, static_cast<Word>(rt.id));
    mem.RawStoreWord(rt.export_table + 8, static_cast<Word>(def.exports.size()));
    mem.RawStoreWord(rt.export_table + 12, 0);
    for (size_t e = 0; e < def.exports.size(); ++e) {
      const Address entry =
          rt.export_table + kExportTableHeaderBytes +
          static_cast<Address>(e) * kExportEntryBytes;
      const auto& x = def.exports[e];
      mem.RawStoreWord(entry, (static_cast<Word>(x.min_stack_bytes) << 8) |
                                  x.arg_registers);
      mem.RawStoreWord(entry + 4, (static_cast<Word>(x.posture) << 16) |
                                      static_cast<Word>(e));
    }
  }

  // --- Virtual sealing type ids ----------------------------------------------
  for (const auto& def : image.compartments) {
    for (const auto& type_name : def.sealing_types_owned) {
      if (!boot->virtual_type_ids.count(type_name)) {
        boot->virtual_type_ids[type_name] = boot->next_virtual_type_id++;
      }
    }
    for (const auto& so : def.sealed_objects) {
      if (!boot->virtual_type_ids.count(so.sealing_type)) {
        boot->virtual_type_ids[so.sealing_type] = boot->next_virtual_type_id++;
      }
    }
  }

  // --- Static sealed object payloads ------------------------------------------
  uint32_t next_quota_id = 0;
  std::map<std::pair<int, size_t>, Capability> alloc_cap_caps;
  std::map<std::pair<int, size_t>, Capability> sealed_obj_caps;
  for (const auto& p : pending_sealed) {
    const auto& def = image.compartments[p.compartment];
    if (p.is_alloc_cap) {
      const auto& ac = def.alloc_caps[p.index];
      mem.RawStoreWord(p.payload, 0x414C4F43u);  // 'ALOC'
      mem.RawStoreWord(p.payload + 4, ac.quota_bytes);
      mem.RawStoreWord(p.payload + 8, 0);  // used
      mem.RawStoreWord(p.payload + 12, next_quota_id++);
      Capability c = root_rw.WithBounds(p.payload, 16)
                         .WithPermissions(PermissionSet::ReadWriteGlobal());
      alloc_cap_caps[{p.compartment, p.index}] =
          c.SealedAs(OType::kAllocatorQuota);
    } else {
      const auto& so = def.sealed_objects[p.index];
      const uint32_t vtype = boot->virtual_type_ids.at(so.sealing_type);
      mem.RawStoreWord(p.payload, vtype);
      mem.RawStoreWord(p.payload + 4, static_cast<Word>(so.payload.size()));
      if (!so.payload.empty()) {
        std::memcpy(mem.raw(p.payload + kSealedObjectHeaderBytes),
                    so.payload.data(), so.payload.size());
      }
      Capability c = root_rw.WithBounds(p.payload, p.size)
                         .WithPermissions(PermissionSet::ReadWriteGlobal());
      sealed_obj_caps[{p.compartment, p.index}] = c.SealedAs(OType::kTokenApi);
    }
  }

  // --- Import tables ------------------------------------------------------------
  for (auto& rt : boot->compartments) {
    const auto& def = *rt.def;
    Address slot = rt.import_table;
    auto push = [&](ImportBinding b) {
      b.slot_address = slot;
      slot += kImportEntryBytes;
      rt.imports.push_back(std::move(b));
    };

    for (const auto& q : def.compartment_imports) {
      const auto [callee_name, export_name] = SplitQualified(q);
      const int callee = boot->CompartmentIndex(callee_name);
      if (callee < 0) {
        throw std::invalid_argument(rt.name + " imports unknown compartment: " + q);
      }
      const int exp =
          FindExport(image.compartments[callee].exports, export_name);
      if (exp < 0) {
        throw std::invalid_argument(rt.name + " imports unknown export: " + q);
      }
      // Sealed capability into the callee's export table: base points at the
      // table, cursor at the entry (§3.1.2).
      Capability raw =
          root_rw
              .WithBounds(boot->compartments[callee].export_table,
                          kExportTableHeaderBytes +
                              kExportEntryBytes *
                                  image.compartments[callee].exports.size())
              .WithPermissions(PermissionSet::ReadOnlyGlobal());
      raw = raw.WithAddress(boot->compartments[callee].export_table +
                            kExportTableHeaderBytes +
                            static_cast<Address>(exp) * kExportEntryBytes);
      ImportBinding b;
      b.kind = ImportBinding::Kind::kCompartmentCall;
      b.qualified_name = q;
      b.cap = raw.SealedAs(OType::kSwitcherCompartment);
      b.target_compartment = callee;
      b.target_export = exp;
      push(std::move(b));
    }

    for (const auto& q : def.library_imports) {
      const auto [lib_name, export_name] = SplitQualified(q);
      int lib = -1;
      for (const auto& l : boot->libraries) {
        if (l.name == lib_name) {
          lib = l.id;
        }
      }
      if (lib < 0) {
        throw std::invalid_argument(rt.name + " imports unknown library: " + q);
      }
      const int exp = FindExport(image.libraries[lib].exports, export_name);
      if (exp < 0) {
        throw std::invalid_argument(rt.name + " imports unknown library export: " + q);
      }
      const auto posture = image.libraries[lib].exports[exp].posture;
      OType sentry_type = OType::kSentryInheriting;
      if (posture == InterruptPosture::kEnabled) {
        sentry_type = OType::kSentryEnabling;
      } else if (posture == InterruptPosture::kDisabled) {
        sentry_type = OType::kSentryDisabling;
      }
      ImportBinding b;
      b.kind = ImportBinding::Kind::kLibraryCall;
      b.qualified_name = q;
      b.cap = boot->libraries[lib].code_cap.SealedAs(sentry_type);
      b.target_library = lib;
      b.target_export = exp;
      push(std::move(b));
    }

    for (const auto& m : def.mmio_imports) {
      PermissionSet perms({Permission::kGlobal, Permission::kLoad});
      if (m.writeable) {
        perms = perms.With(Permission::kStore);
      }
      Capability dev;
      {
        // MMIO is outside SRAM; derive a fresh root over device space. Only
        // the loader may do this (guests cannot forge MMIO pointers, §3.1.1
        // footnote 2).
        Capability mmio_root = Capability::RootReadWrite(m.base, m.base + m.size);
        dev = mmio_root.WithPermissions(perms);
      }
      ImportBinding b;
      b.kind = ImportBinding::Kind::kMmio;
      b.qualified_name = m.device;
      b.cap = dev;
      push(std::move(b));
    }

    for (size_t k = 0; k < def.alloc_caps.size(); ++k) {
      ImportBinding b;
      b.kind = ImportBinding::Kind::kSealedObject;
      b.qualified_name = def.alloc_caps[k].name;
      b.cap = alloc_cap_caps.at({rt.id, k});
      push(std::move(b));
    }
    for (size_t k = 0; k < def.sealed_objects.size(); ++k) {
      ImportBinding b;
      b.kind = ImportBinding::Kind::kSealedObject;
      b.qualified_name = def.sealed_objects[k].name;
      b.cap = sealed_obj_caps.at({rt.id, k});
      push(std::move(b));
    }
    for (const auto& type_name : def.sealing_types_owned) {
      const uint32_t id = boot->virtual_type_ids.at(type_name);
      // A virtual sealing key: permit-seal/unseal authority whose cursor and
      // bounds designate the virtual type (§3.2.1). Virtual type ids live
      // above the hardware otype space.
      const Capability key = Capability::MakeSealingAuthority(id, 1);
      ImportBinding b;
      b.kind = ImportBinding::Kind::kSealingKey;
      b.qualified_name = type_name;
      b.cap = key;
      push(std::move(b));
    }

    // Materialize the import table in simulated memory (addresses only; the
    // full capabilities live in the shadow map via the root store).
    for (const auto& b : rt.imports) {
      mem.RawStoreWord(b.slot_address, b.cap.cursor());
      mem.RawStoreWord(b.slot_address + 4,
                       static_cast<Word>(b.kind) << 24 | (b.cap.length() & 0xFFFFFF));
    }
  }

  // --- Native state objects + globals snapshots -------------------------------
  for (auto& rt : boot->compartments) {
    if (rt.def->state_factory) {
      rt.state = rt.def->state_factory();
    }
    rt.globals_snapshot.resize(rt.globals_size);
    std::memcpy(rt.globals_snapshot.data(), mem.raw(rt.globals_base),
                rt.globals_size);
  }

  // --- Self-erase (§3.1.1): scratch becomes heap -------------------------------
  std::memset(mem.raw(scratch_base), 0, scratch_size);
  // Zero the whole heap: "we zero the entire heap on boot" (§3.1.3).
  std::memset(mem.raw(boot->heap_base), 0, boot->heap_size);

  boot->image = std::move(image);
  // Rebind def pointers to the retained image copy.
  for (size_t i = 0; i < boot->compartments.size(); ++i) {
    boot->compartments[i].def = &boot->image.compartments[i];
  }
  for (size_t i = 0; i < boot->libraries.size(); ++i) {
    boot->libraries[i].def = &boot->image.libraries[i];
  }
  return boot;
}

// --- Snapshot (DESIGN.md §10) ---------------------------------------------

void SerializeBootInfo(snap::Writer& w, const BootInfo& boot) {
  w.U32(static_cast<uint32_t>(boot.compartments.size()));
  for (const CompartmentRuntime& c : boot.compartments) {
    w.I32(c.id);
    w.Str(c.name);
    w.Cap(c.pcc);
    w.Cap(c.cgp);
    w.U32(c.code_base);
    w.U32(c.code_size);
    w.U32(c.globals_base);
    w.U32(c.globals_size);
    w.U32(c.export_table);
    w.U32(c.import_table);
    w.U32(static_cast<uint32_t>(c.imports.size()));
    for (const ImportBinding& b : c.imports) {
      w.U8(static_cast<uint8_t>(b.kind));
      w.Str(b.qualified_name);
      w.Cap(b.cap);
      w.I32(b.target_compartment);
      w.I32(b.target_library);
      w.I32(b.target_export);
      w.U32(b.slot_address);
    }
    w.U32(static_cast<uint32_t>(c.globals_snapshot.size()));
    w.Bytes(c.globals_snapshot.data(), c.globals_snapshot.size());
  }
  w.U32(static_cast<uint32_t>(boot.libraries.size()));
  for (const LibraryRuntime& l : boot.libraries) {
    w.I32(l.id);
    w.Str(l.name);
    w.Cap(l.code_cap);
    w.U32(l.code_base);
    w.U32(l.code_size);
  }
  w.U32(static_cast<uint32_t>(boot.threads.size()));
  for (const ThreadLayout& t : boot.threads) {
    w.Str(t.name);
    w.U16(t.priority);
    w.U32(t.stack_base);
    w.U32(t.stack_size);
    w.U32(t.trusted_stack_base);
    w.U32(t.trusted_stack_size);
    w.U16(t.max_frames);
    w.I32(t.entry_compartment);
    w.I32(t.entry_export);
  }
  w.U32(boot.heap_base);
  w.U32(boot.heap_size);
  w.Cap(boot.heap_root);
  w.Cap(boot.trusted_stack_root);
  w.Cap(boot.switcher_seal_key);
  w.Cap(boot.allocator_seal_key);
  w.Cap(boot.token_seal_key);
  w.Cap(boot.globals_root);
  w.U32(static_cast<uint32_t>(boot.virtual_type_ids.size()));
  for (const auto& [name, id] : boot.virtual_type_ids) {
    w.Str(name);
    w.U32(id);
  }
  w.U32(boot.next_virtual_type_id);
  w.U32(static_cast<uint32_t>(boot.export_table_index.size()));
  for (const auto& [addr, comp] : boot.export_table_index) {
    w.U32(addr);
    w.I32(comp);
  }
  w.U32(boot.stats.code_bytes);
  w.U32(boot.stats.metadata_bytes);
  w.U32(boot.stats.sealed_object_bytes);
  w.U32(boot.stats.globals_bytes);
  w.U32(boot.stats.stack_bytes);
  w.U32(boot.stats.trusted_stack_bytes);
  w.U32(boot.stats.loader_scratch_bytes);
  w.U32(boot.stats.heap_bytes);
  w.U32(static_cast<uint32_t>(boot.stats.per_compartment_metadata.size()));
  for (const auto& [name, bytes] : boot.stats.per_compartment_metadata) {
    w.Str(name);
    w.U32(bytes);
  }
}

std::unique_ptr<BootInfo> DeserializeBootInfo(snap::Reader& r) {
  auto boot = std::make_unique<BootInfo>();
  boot->compartments.resize(r.U32());
  for (CompartmentRuntime& c : boot->compartments) {
    c.id = r.I32();
    c.name = r.Str();
    c.pcc = r.Cap();
    c.cgp = r.Cap();
    c.code_base = r.U32();
    c.code_size = r.U32();
    c.globals_base = r.U32();
    c.globals_size = r.U32();
    c.export_table = r.U32();
    c.import_table = r.U32();
    c.imports.resize(r.U32());
    for (ImportBinding& b : c.imports) {
      b.kind = static_cast<ImportBinding::Kind>(r.U8());
      b.qualified_name = r.Str();
      b.cap = r.Cap();
      b.target_compartment = r.I32();
      b.target_library = r.I32();
      b.target_export = r.I32();
      b.slot_address = r.U32();
    }
    c.globals_snapshot.resize(r.U32());
    r.BytesInto(c.globals_snapshot.data(), c.globals_snapshot.size());
  }
  boot->libraries.resize(r.U32());
  for (LibraryRuntime& l : boot->libraries) {
    l.id = r.I32();
    l.name = r.Str();
    l.code_cap = r.Cap();
    l.code_base = r.U32();
    l.code_size = r.U32();
  }
  boot->threads.resize(r.U32());
  for (ThreadLayout& t : boot->threads) {
    t.name = r.Str();
    t.priority = r.U16();
    t.stack_base = r.U32();
    t.stack_size = r.U32();
    t.trusted_stack_base = r.U32();
    t.trusted_stack_size = r.U32();
    t.max_frames = r.U16();
    t.entry_compartment = r.I32();
    t.entry_export = r.I32();
  }
  boot->heap_base = r.U32();
  boot->heap_size = r.U32();
  boot->heap_root = r.Cap();
  boot->trusted_stack_root = r.Cap();
  boot->switcher_seal_key = r.Cap();
  boot->allocator_seal_key = r.Cap();
  boot->token_seal_key = r.Cap();
  boot->globals_root = r.Cap();
  const uint32_t vtypes = r.U32();
  for (uint32_t i = 0; i < vtypes; ++i) {
    const std::string name = r.Str();
    boot->virtual_type_ids[name] = r.U32();
  }
  boot->next_virtual_type_id = r.U32();
  const uint32_t exports = r.U32();
  for (uint32_t i = 0; i < exports; ++i) {
    const Address addr = r.U32();
    boot->export_table_index[addr] = r.I32();
  }
  boot->stats.code_bytes = r.U32();
  boot->stats.metadata_bytes = r.U32();
  boot->stats.sealed_object_bytes = r.U32();
  boot->stats.globals_bytes = r.U32();
  boot->stats.stack_bytes = r.U32();
  boot->stats.trusted_stack_bytes = r.U32();
  boot->stats.loader_scratch_bytes = r.U32();
  boot->stats.heap_bytes = r.U32();
  const uint32_t per_comp = r.U32();
  for (uint32_t i = 0; i < per_comp; ++i) {
    const std::string name = r.Str();
    boot->stats.per_compartment_metadata[name] = r.U32();
  }
  return boot;
}

}  // namespace cheriot

// The boot loader (§3.1.1): consumes the firmware image, lays out SRAM
// deterministically, and refines the omnipotent root capabilities into the
// system's entire initial capability graph — compartment PCC/CGP pairs,
// export tables, import tables (sealed export capabilities, MMIO grants,
// library sentries, static sealed objects, allocation capabilities), thread
// stacks and trusted stacks. It then erases its own scratch region, which
// becomes part of the shared heap.
#ifndef SRC_LOADER_LOADER_H_
#define SRC_LOADER_LOADER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/firmware/image.h"
#include "src/hw/machine.h"

namespace cheriot {

// Sizes of the metadata records the loader materializes. These determine the
// per-compartment memory overhead measured in Table 2 (§5.3.1).
inline constexpr Address kExportTableHeaderBytes = 16;
inline constexpr Address kExportEntryBytes = 8;
inline constexpr Address kImportEntryBytes = 8;
inline constexpr Address kCompartmentDescriptorBytes = 24;  // PCC+CGP+handler
inline constexpr Address kTrustedStackHeaderBytes = 16;
inline constexpr Address kRegisterSaveAreaBytes = 128;  // 16 caps x 8 B
inline constexpr Address kTrustedStackFrameBytes = 16;
inline constexpr Address kSealedObjectHeaderBytes = 8;  // virtual otype + size

// One resolved import-table slot.
struct ImportBinding {
  enum class Kind : uint8_t {
    kCompartmentCall,  // sealed capability to a callee export-table entry
    kLibraryCall,      // sentry capability to a shared-library function
    kMmio,             // capability to device registers
    kSealedObject,     // static sealed object (e.g. an allocation capability)
    kSealingKey,       // (un)sealing authority for an owned virtual type
  };
  Kind kind;
  std::string qualified_name;  // "callee.export", device or object name
  Capability cap;
  int target_compartment = -1;  // callee index for kCompartmentCall
  int target_library = -1;      // library index for kLibraryCall
  int target_export = -1;       // export index within the target
  Address slot_address = 0;     // where this entry lives in the import table
};

// Per-compartment runtime state assembled at boot.
struct CompartmentRuntime {
  int id = -1;
  std::string name;
  Capability pcc;
  Capability cgp;
  Address code_base = 0;
  uint32_t code_size = 0;
  Address globals_base = 0;
  uint32_t globals_size = 0;
  Address export_table = 0;
  Address import_table = 0;
  std::vector<ImportBinding> imports;
  const CompartmentDef* def = nullptr;
  // Native state object (model analog of compartment globals); re-created on
  // micro-reboot.
  std::shared_ptr<void> state;
  // Micro-reboot bookkeeping.
  bool call_guard_closed = false;  // §3.2.6 step 1
  uint32_t reboot_count = 0;
  Cycles last_reboot_at = 0;
  Cycles last_reboot_duration = 0;
  std::vector<uint8_t> globals_snapshot;  // pristine globals (step 4)
};

struct LibraryRuntime {
  int id = -1;
  std::string name;
  Capability code_cap;
  Address code_base = 0;
  uint32_t code_size = 0;
  const LibraryDef* def = nullptr;
};

// Thread layout (stacks are created by the loader; scheduling state lives in
// the kernel).
struct ThreadLayout {
  std::string name;
  uint16_t priority = 0;
  Address stack_base = 0;
  uint32_t stack_size = 0;
  Address trusted_stack_base = 0;
  uint32_t trusted_stack_size = 0;
  uint16_t max_frames = 0;
  int entry_compartment = -1;
  int entry_export = -1;
};

// Byte accounting for Table 2 / EXPERIMENTS.md.
struct LayoutStats {
  Address code_bytes = 0;
  Address metadata_bytes = 0;  // descriptors + export/import tables
  Address sealed_object_bytes = 0;
  Address globals_bytes = 0;
  Address stack_bytes = 0;
  Address trusted_stack_bytes = 0;
  Address loader_scratch_bytes = 0;
  Address heap_bytes = 0;
  // Per-compartment metadata contribution (descriptor + export table +
  // import entries), keyed by compartment name.
  std::map<std::string, Address> per_compartment_metadata;
};

struct BootInfo {
  std::vector<CompartmentRuntime> compartments;
  std::vector<LibraryRuntime> libraries;
  std::vector<ThreadLayout> threads;
  Address heap_base = 0;
  Address heap_size = 0;
  // Privileged capabilities retained by the TCB after boot.
  Capability heap_root;            // allocator: revocation-exempt heap access
  Capability trusted_stack_root;   // switcher only
  Capability switcher_seal_key;    // hardware otype 9
  Capability allocator_seal_key;   // hardware otype 10
  Capability token_seal_key;       // hardware otype 11
  Capability globals_root;         // switcher: for micro-reboot globals reset
  // Virtual sealing types (token API): name -> type id (ids >= 16).
  std::map<std::string, uint32_t> virtual_type_ids;
  uint32_t next_virtual_type_id = 16;
  // Map from export-table address to compartment id (switcher's view).
  std::map<Address, int> export_table_index;
  LayoutStats stats;
  FirmwareImage image;  // retained for auditing

  CompartmentRuntime* FindCompartment(const std::string& name);
  int CompartmentIndex(const std::string& name) const;
};

class Loader {
 public:
  // Runs the boot sequence. Throws std::invalid_argument on malformed
  // images (unresolvable imports, duplicate names, oversized layouts) —
  // the loader is "simple code with a lot of invariant checks" (§3.1.1).
  static std::unique_ptr<BootInfo> Load(Machine& machine, FirmwareImage image);
};

namespace snap {
class Writer;
class Reader;
}  // namespace snap

// Snapshot save/restore of the boot-time capability graph (DESIGN.md §10).
// Everything the loader computed is serialised EXCEPT the host-side handles:
// CompartmentRuntime::def/state and LibraryRuntime::def point into the
// firmware image's native closures and are rebound by
// System::BootFromSnapshot against a freshly built image (matched by name).
// The mutable micro-reboot bookkeeping (call_guard_closed, reboot counts)
// is owned by the kernel section, not serialised here, so the BOOT section
// of a long-running board stays byte-identical to its cold form.
void SerializeBootInfo(snap::Writer& w, const BootInfo& boot);
std::unique_ptr<BootInfo> DeserializeBootInfo(snap::Reader& r);

}  // namespace cheriot

#endif  // SRC_LOADER_LOADER_H_

#include "src/runtime/hardening.h"

#include "src/hw/machine.h"

namespace cheriot::hardening {

Capability ReadOnly(const Capability& cap, Address len) {
  return cap.WithBoundsAtCursor(len)
      .WithoutPermission(Permission::kStore)
      .WithoutPermission(Permission::kLoadMutable)
      .WithoutPermission(Permission::kStoreLocal);
}

Capability WriteView(const Capability& cap, Address len) {
  return cap.WithBoundsAtCursor(len);
}

Capability DeepImmutable(const Capability& cap) {
  return cap.WithoutPermission(Permission::kStore)
      .WithoutPermission(Permission::kLoadMutable)
      .WithoutPermission(Permission::kStoreLocal);
}

Capability NoCapture(const Capability& cap) {
  return cap.WithoutPermission(Permission::kGlobal)
      .WithoutPermission(Permission::kLoadGlobal);
}

Capability ImmutableNoCapture(const Capability& cap) {
  return NoCapture(DeepImmutable(cap));
}

bool CheckPointer(const Capability& cap, Address min_size,
                  PermissionSet required) {
  return cap.tag() && !cap.IsSealed() && cap.permissions().HasAll(required) &&
         cap.InBounds(cap.cursor(), min_size);
}

bool CheckPointerCosted(Machine& machine, const Capability& cap,
                        Address min_size, PermissionSet required) {
  machine.Tick(44);  // Table 3: "Check a pointer" 44 cycles
  return CheckPointer(cap, min_size, required);
}

}  // namespace cheriot::hardening

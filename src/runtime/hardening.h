// Interface-hardening helpers (§3.2.5): capability de-privileging before
// sharing across a trust boundary, and input checking for pointers that
// cross one. These are pure capability manipulations (sub-10-cycle register
// operations on the real core, Table 3).
#ifndef SRC_RUNTIME_HARDENING_H_
#define SRC_RUNTIME_HARDENING_H_

#include "src/base/costs.h"
#include "src/cap/capability.h"

namespace cheriot {
class Machine;
}

namespace cheriot::hardening {

// Tightens bounds around [cap.cursor(), cursor+len) and drops write rights.
// Use before passing a read buffer to another compartment.
Capability ReadOnly(const Capability& cap, Address len);

// Tightens bounds and keeps write rights (e.g. a receive buffer).
Capability WriteView(const Capability& cap, Address len);

// Deep immutability: nothing reachable through the result can be modified
// (strips kStore + kLoadMutable transitively via the load mechanism, §2.1).
Capability DeepImmutable(const Capability& cap);

// Deep no-capture: nothing reachable through the result can be captured by
// the callee (strips kGlobal + kLoadGlobal, §2.1). Store requires
// permit-store-local, which only stacks have.
Capability NoCapture(const Capability& cap);

// Both of the above: the strongest argument attenuation.
Capability ImmutableNoCapture(const Capability& cap);

// Input check (§3.2.5 "Checking inputs"): valid tag, unsealed, at least
// min_size bytes from the cursor, all `required` permissions present.
bool CheckPointer(const Capability& cap, Address min_size,
                  PermissionSet required);

// Charged variant used by guests (ticks the Table 3 "Check a pointer" cost).
bool CheckPointerCosted(Machine& machine, const Capability& cap,
                        Address min_size, PermissionSet required);

}  // namespace cheriot::hardening

#endif  // SRC_RUNTIME_HARDENING_H_

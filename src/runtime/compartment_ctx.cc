#include "src/runtime/compartment_ctx.h"

#include <algorithm>
#include <cstdio>

#include "src/base/costs.h"
#include "src/base/log.h"
#include "src/kernel/system.h"
#include "src/switcher/switcher.h"

namespace cheriot {

CompartmentCtx::CompartmentCtx(System* system, GuestThread* thread,
                               int compartment)
    : system_(system), thread_(thread), compartment_(compartment) {}

const std::string& CompartmentCtx::compartment_name() const {
  return system_->boot().compartments[compartment_].name;
}

Machine& CompartmentCtx::machine() { return system_->machine(); }

void* CompartmentCtx::StateRaw() {
  return system_->boot().compartments[compartment_].state.get();
}

// Trap dispatch for a single guest operation (§3.2.6): the nearest scoped
// handler wins; otherwise the global handler runs and may install a
// corrected context (by convention the replacement authority in a0), in
// which case the operation is retried exactly once.
template <typename Fn>
auto CompartmentCtx::Checked(const Capability& authority, Fn&& op)
    -> decltype(op(authority)) {
  try {
    return op(authority);
  } catch (TrapException& trap) {
    if (scope_depth_ > 0) {
      throw;  // the enclosing Try() scope handles it
    }
    TrapInfo info;
    info.cause = trap.code();
    info.fault_address = trap.fault_address();
    info.regs.pcc = system_->boot().compartments[compartment_].pcc;
    info.regs.cgp = system_->boot().compartments[compartment_].cgp;
    info.regs.csp = thread_->stack_cap.WithAddress(thread_->sp);
    info.regs.a[0] = authority;
    const ErrorRecovery r =
        system_->switcher().DeliverTrap(*thread_, *this, &info);
    (void)r;  // kInstallContext is the only non-throwing outcome
    try {
      return op(info.regs.a[0]);
    } catch (TrapException&) {
      machine().Tick(cost::kUnwindNoHandler);
      throw UnwindException{true};
    }
  }
}

Word CompartmentCtx::LoadWord(const Capability& cap, int64_t offset) {
  return Checked(cap, [&](const Capability& c) {
    return machine().memory().LoadWord(c, c.cursor() + static_cast<Address>(offset));
  });
}

void CompartmentCtx::StoreWord(const Capability& cap, int64_t offset,
                               Word value) {
  Checked(cap, [&](const Capability& c) {
    machine().memory().StoreWord(c, c.cursor() + static_cast<Address>(offset), value);
    return 0;
  });
}

uint8_t CompartmentCtx::LoadByte(const Capability& cap, int64_t offset) {
  return Checked(cap, [&](const Capability& c) {
    return machine().memory().LoadByte(c, c.cursor() + static_cast<Address>(offset));
  });
}

void CompartmentCtx::StoreByte(const Capability& cap, int64_t offset,
                               uint8_t value) {
  Checked(cap, [&](const Capability& c) {
    machine().memory().StoreByte(c, c.cursor() + static_cast<Address>(offset), value);
    return 0;
  });
}

Capability CompartmentCtx::LoadCap(const Capability& cap, int64_t offset) {
  return Checked(cap, [&](const Capability& c) {
    return machine().memory().LoadCap(c, c.cursor() + static_cast<Address>(offset));
  });
}

void CompartmentCtx::StoreCap(const Capability& cap, int64_t offset,
                              const Capability& value) {
  Checked(cap, [&](const Capability& c) {
    machine().memory().StoreCap(c, c.cursor() + static_cast<Address>(offset), value);
    return 0;
  });
}

void CompartmentCtx::ReadBytes(const Capability& cap, int64_t offset, void* out,
                               Address len) {
  Checked(cap, [&](const Capability& c) {
    machine().memory().ReadBytes(c, c.cursor() + static_cast<Address>(offset), out, len);
    return 0;
  });
}

void CompartmentCtx::WriteBytes(const Capability& cap, int64_t offset,
                                const void* in, Address len) {
  Checked(cap, [&](const Capability& c) {
    machine().memory().WriteBytes(c, c.cursor() + static_cast<Address>(offset), in, len);
    return 0;
  });
}

std::vector<uint8_t> CompartmentCtx::ReadVector(const Capability& cap,
                                                int64_t offset, Address len) {
  std::vector<uint8_t> out(len);
  ReadBytes(cap, offset, out.data(), len);
  return out;
}

void CompartmentCtx::Zero(const Capability& cap, int64_t offset, Address len) {
  Checked(cap, [&](const Capability& c) {
    machine().memory().ZeroRange(c, c.cursor() + static_cast<Address>(offset), len);
    return 0;
  });
}

void CompartmentCtx::Burn(Cycles cycles) { machine().Tick(cycles); }

Capability CompartmentCtx::globals() const {
  return system_->boot().compartments[compartment_].cgp;
}

CompartmentCtx::StackBuffer::StackBuffer(CompartmentCtx* ctx, Address bytes)
    : ctx_(ctx), bytes_(AlignUp(bytes, kGranuleBytes)) {
  GuestThread& t = ctx->thread();
  if (t.sp < t.stack_base + bytes_) {
    throw TrapException(TrapCode::kStackOverflow, t.sp, "stack exhausted");
  }
  t.sp -= bytes_;
  t.high_water = std::min(t.high_water, t.sp);
  t.peak_stack_bytes =
      std::max<uint32_t>(t.peak_stack_bytes,
                         static_cast<uint32_t>(t.stack_base + t.stack_size - t.sp));
  cap_ = t.stack_cap.WithBounds(t.sp, bytes_);
}

CompartmentCtx::StackBuffer::~StackBuffer() {
  // Stack discipline: buffers are released LIFO with the frame.
  ctx_->thread().sp += bytes_;
}

Address CompartmentCtx::StackRemaining() const {
  return thread_->sp - thread_->stack_base;
}

Address CompartmentCtx::StackPeakUse() const {
  return thread_->stack_base + thread_->stack_size - thread_->high_water;
}

const ImportBinding* CompartmentCtx::FindImport(
    const std::string& qualified_name) const {
  const auto& rt = system_->boot().compartments[compartment_];
  for (const auto& b : rt.imports) {
    if (b.qualified_name == qualified_name) {
      return &b;
    }
  }
  return nullptr;
}

Capability CompartmentCtx::Mmio(const std::string& device) const {
  const ImportBinding* b = FindImport(device);
  if (b == nullptr || b->kind != ImportBinding::Kind::kMmio) {
    throw TrapException(TrapCode::kTagViolation, 0,
                        "MMIO device not imported: " + device);
  }
  return b->cap;
}

Capability CompartmentCtx::SealedImport(const std::string& name) const {
  const ImportBinding* b = FindImport(name);
  if (b == nullptr || b->kind != ImportBinding::Kind::kSealedObject) {
    throw TrapException(TrapCode::kTagViolation, 0,
                        "sealed object not imported: " + name);
  }
  return b->cap;
}

Capability CompartmentCtx::SealingKey(const std::string& type_name) const {
  const ImportBinding* b = FindImport(type_name);
  if (b == nullptr || b->kind != ImportBinding::Kind::kSealingKey) {
    throw TrapException(TrapCode::kTagViolation, 0,
                        "sealing type not owned: " + type_name);
  }
  return b->cap;
}

Capability CompartmentCtx::Call(const std::string& qualified_name,
                                const std::vector<Capability>& args) {
  const ImportBinding* b = FindImport(qualified_name);
  if (b == nullptr || b->kind != ImportBinding::Kind::kCompartmentCall) {
    // Cross-compartment control-flow integrity (§3.2.5): entry points that
    // were not imported at build time are simply unreachable.
    return Checked(Capability(), [&](const Capability&) -> Capability {
      throw TrapException(TrapCode::kIllegalInstruction, 0,
                          "call target not imported: " + qualified_name);
    });
  }
  try {
    return system_->switcher().CompartmentCall(*thread_, *b, args);
  } catch (TrapException& trap) {
    // Faults in the switcher's setup phase (bad sealed cap, stack check)
    // belong to the *caller*; route through normal trap dispatch.
    if (scope_depth_ > 0) {
      throw;
    }
    TrapInfo info;
    info.cause = trap.code();
    info.fault_address = trap.fault_address();
    (void)system_->switcher().DeliverTrap(*thread_, *this, &info);
    return StatusCap(Status::kCompartmentFail);
  }
}

Capability CompartmentCtx::LibCall(const std::string& qualified_name,
                                   const std::vector<Capability>& args) {
  const ImportBinding* b = FindImport(qualified_name);
  if (b == nullptr || b->kind != ImportBinding::Kind::kLibraryCall) {
    return Checked(Capability(), [&](const Capability&) -> Capability {
      throw TrapException(TrapCode::kIllegalInstruction, 0,
                          "library target not imported: " + qualified_name);
    });
  }
  return system_->switcher().LibraryCall(*thread_, *b, args);
}

Capability CompartmentCtx::CallSched(const char* name,
                                     const std::vector<Capability>& args) {
  // kSyncPreempt decision point: the caller's read-then-call window. Only
  // branches under cheriot_mc; a no-op otherwise.
  system_->MaybeArbiterPreempt();
  return Call(std::string("sched.") + name, args);
}

Capability CompartmentCtx::CallAlloc(const char* name,
                                     const std::vector<Capability>& args) {
  system_->MaybeArbiterPreempt();
  return Call(std::string("alloc.") + name, args);
}

Capability CompartmentCtx::HeapAllocate(const Capability& alloc_cap, Word size,
                                        Word timeout_cycles) {
  return CallAlloc("heap_allocate",
                   {alloc_cap, WordCap(size), WordCap(timeout_cycles)});
}

Status CompartmentCtx::HeapFree(const Capability& alloc_cap,
                                const Capability& ptr) {
  return static_cast<Status>(
      static_cast<int32_t>(CallAlloc("heap_free", {alloc_cap, ptr}).word()));
}

Status CompartmentCtx::HeapClaim(const Capability& alloc_cap,
                                 const Capability& ptr) {
  return static_cast<Status>(
      static_cast<int32_t>(CallAlloc("heap_claim", {alloc_cap, ptr}).word()));
}

bool CompartmentCtx::HeapCanFree(const Capability& alloc_cap,
                                 const Capability& ptr) {
  return CallAlloc("heap_can_free", {alloc_cap, ptr}).word() != 0;
}

Word CompartmentCtx::HeapQuotaRemaining(const Capability& alloc_cap) {
  return CallAlloc("quota_remaining", {alloc_cap}).word();
}

Word CompartmentCtx::HeapFreeAll(const Capability& alloc_cap) {
  return CallAlloc("heap_free_all", {alloc_cap}).word();
}

Status CompartmentCtx::EphemeralClaim(const Capability& obj) {
  return system_->switcher().EphemeralClaim(*thread_, obj);
}

Capability CompartmentCtx::TokenKeyNew() { return CallAlloc("token_key_new", {}); }

Capability CompartmentCtx::TokenObjNew(const Capability& alloc_cap,
                                       const Capability& key, Word size) {
  return CallAlloc("token_obj_new", {alloc_cap, key, WordCap(size)});
}

Capability CompartmentCtx::TokenUnseal(const Capability& key,
                                       const Capability& sealed_obj) {
  return LibCall("token.token_unseal", {key, sealed_obj});
}

Status CompartmentCtx::TokenObjDestroy(const Capability& alloc_cap,
                                       const Capability& key,
                                       const Capability& sealed_obj) {
  return static_cast<Status>(static_cast<int32_t>(
      CallAlloc("token_obj_destroy", {alloc_cap, key, sealed_obj}).word()));
}

Status CompartmentCtx::FutexWait(const Capability& word_cap, Word expected,
                                 Word timeout_cycles) {
  return static_cast<Status>(static_cast<int32_t>(
      CallSched("futex_timed_wait",
                {word_cap, WordCap(expected), WordCap(timeout_cycles)})
          .word()));
}

int CompartmentCtx::FutexWake(const Capability& word_cap, int count) {
  return static_cast<int32_t>(
      CallSched("futex_wake", {word_cap, WordCap(static_cast<Word>(count))})
          .word());
}

void CompartmentCtx::Yield() { CallSched("yield", {}); }

void CompartmentCtx::SleepCycles(Cycles cycles) {
  CallSched("sleep", {WordCap(static_cast<Word>(cycles))});
}

Cycles CompartmentCtx::Now() const { return system_->Now(); }

int CompartmentCtx::ThreadId() const { return thread_->id; }

Capability CompartmentCtx::InterruptFutex(IrqLine line) {
  return CallSched("interrupt_futex_get",
                   {WordCap(static_cast<Word>(line))});
}

int CompartmentCtx::MultiwaiterCreate(int max_events) {
  return static_cast<int32_t>(
      CallSched("multiwaiter_create", {WordCap(static_cast<Word>(max_events))})
          .word());
}

Status CompartmentCtx::MultiwaiterWait(int mw_id, const Capability& events,
                                       int count, Word timeout_cycles) {
  return static_cast<Status>(static_cast<int32_t>(
      CallSched("multiwaiter_wait",
                {WordCap(static_cast<Word>(mw_id)), events,
                 WordCap(static_cast<Word>(count)), WordCap(timeout_cycles)})
          .word()));
}

Status CompartmentCtx::MultiwaiterDestroy(int mw_id) {
  return static_cast<Status>(static_cast<int32_t>(
      CallSched("multiwaiter_destroy", {WordCap(static_cast<Word>(mw_id))})
          .word()));
}

std::optional<TrapInfo> CompartmentCtx::Try(const std::function<void()>& body) {
  machine().Tick(cost::kScopedHandlerEnter);
  ++scope_depth_;
  struct DepthGuard {
    int* depth;
    ~DepthGuard() { --*depth; }
  } guard{&scope_depth_};
  try {
    body();
    return std::nullopt;
  } catch (TrapException& trap) {
    machine().Tick(cost::kScopedHandlerFault - cost::kScopedHandlerEnter);
    TrapInfo info;
    info.cause = trap.code();
    info.fault_address = trap.fault_address();
    return info;
  }
}

void CompartmentCtx::MicroRebootSelf() {
  system_->MicroRebootCompartment(compartment_);
}

void CompartmentCtx::DebugLog(const char* fmt, ...) {
  char buf[400];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  LOG_INFO("[%s/t%d] %s", compartment_name().c_str(), thread_->id, buf);
}

}  // namespace cheriot

// CompartmentCtx: the guest-facing API surface ("libcheriot"). Every entry
// point receives one; all access to simulated memory, imports, the stack,
// the TCB services and error handling flows through it.
//
// This is the model's contract point (DESIGN.md §1): compartment code only
// touches machine state through this API, which enforces the capability
// model on every operation.
#ifndef SRC_RUNTIME_COMPARTMENT_CTX_H_
#define SRC_RUNTIME_COMPARTMENT_CTX_H_

#include <cstdarg>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/firmware/image.h"
#include "src/kernel/guest_thread.h"
#include "src/loader/loader.h"

namespace cheriot {

class System;
class Machine;

class CompartmentCtx {
 public:
  CompartmentCtx(System* system, GuestThread* thread, int compartment);

  System& system() { return *system_; }
  GuestThread& thread() { return *thread_; }
  int compartment() const { return compartment_; }
  const std::string& compartment_name() const;
  Machine& machine();

  // --- Memory access (capability-checked; faults are delivered to the
  // nearest scoped handler, else the compartment's global handler) ---
  Word LoadWord(const Capability& cap, int64_t offset = 0);
  void StoreWord(const Capability& cap, int64_t offset, Word value);
  void StoreWord(const Capability& cap, Word value) { StoreWord(cap, 0, value); }
  uint8_t LoadByte(const Capability& cap, int64_t offset = 0);
  void StoreByte(const Capability& cap, int64_t offset, uint8_t value);
  Capability LoadCap(const Capability& cap, int64_t offset = 0);
  void StoreCap(const Capability& cap, int64_t offset, const Capability& value);
  void ReadBytes(const Capability& cap, int64_t offset, void* out, Address len);
  void WriteBytes(const Capability& cap, int64_t offset, const void* in,
                  Address len);
  std::vector<uint8_t> ReadVector(const Capability& cap, int64_t offset,
                                  Address len);
  void Zero(const Capability& cap, int64_t offset, Address len);

  // Burns CPU (models compute-heavy guest code, e.g. crypto inner loops).
  void Burn(Cycles cycles);

  // --- Globals & stack ---
  Capability globals() const;

  // RAII stack allocation: moves sp down; restored on destruction. The
  // returned capability is local (no kGlobal) with permit-store-local.
  class StackBuffer {
   public:
    StackBuffer(CompartmentCtx* ctx, Address bytes);
    ~StackBuffer();
    StackBuffer(const StackBuffer&) = delete;
    StackBuffer& operator=(const StackBuffer&) = delete;
    const Capability& cap() const { return cap_; }

   private:
    CompartmentCtx* ctx_;
    Address bytes_;
    Capability cap_;
  };
  StackBuffer AllocStack(Address bytes) { return StackBuffer(this, bytes); }
  // Remaining stack below sp.
  Address StackRemaining() const;
  // Stack watermark tooling (§3.2.5): bytes of this thread's stack ever
  // dirtied (loader zero-fills; we track the high-water mark).
  Address StackPeakUse() const;

  // --- Imports ---
  const ImportBinding* FindImport(const std::string& qualified_name) const;
  // Capability for an MMIO import (by device name). Throws trap-like
  // invalid-argument on missing import (statically detectable; audited).
  Capability Mmio(const std::string& device) const;
  // Static sealed object / sealing key imports by name.
  Capability SealedImport(const std::string& name) const;
  Capability SealingKey(const std::string& type_name) const;

  // --- Calls ---
  // Compartment call via a declared import ("callee.export").
  Capability Call(const std::string& qualified_name,
                  const std::vector<Capability>& args = {});
  // Shared-library call via a declared import ("library.export").
  Capability LibCall(const std::string& qualified_name,
                     const std::vector<Capability>& args = {});

  // --- Allocator conveniences (compartment calls to "alloc.*"; the
  // compartment must have imported them — see ImageBuilderExt helpers) ---
  Capability HeapAllocate(const Capability& alloc_cap, Word size,
                          Word timeout_cycles = ~0u);
  Status HeapFree(const Capability& alloc_cap, const Capability& ptr);
  Status HeapClaim(const Capability& alloc_cap, const Capability& ptr);
  bool HeapCanFree(const Capability& alloc_cap, const Capability& ptr);
  Word HeapQuotaRemaining(const Capability& alloc_cap);
  Word HeapFreeAll(const Capability& alloc_cap);
  // Ephemeral claim: a switcher primitive, not a compartment call (§3.2.5).
  Status EphemeralClaim(const Capability& obj);

  // --- Token API (§3.2.1) ---
  Capability TokenKeyNew();
  Capability TokenObjNew(const Capability& alloc_cap, const Capability& key,
                         Word size);
  // Library fast path.
  Capability TokenUnseal(const Capability& key, const Capability& sealed_obj);
  Status TokenObjDestroy(const Capability& alloc_cap, const Capability& key,
                         const Capability& sealed_obj);

  // --- Scheduler conveniences (compartment calls to "sched.*") ---
  Status FutexWait(const Capability& word_cap, Word expected,
                   Word timeout_cycles = ~0u);
  int FutexWake(const Capability& word_cap, int count);
  void Yield();
  void SleepCycles(Cycles cycles);
  Cycles Now() const;
  int ThreadId() const;
  Capability InterruptFutex(IrqLine line);
  int MultiwaiterCreate(int max_events);
  // events: capability to an array of {futex_addr, expected} word pairs.
  Status MultiwaiterWait(int mw_id, const Capability& events, int count,
                         Word timeout_cycles);
  Status MultiwaiterDestroy(int mw_id);

  // --- Error handling (§3.2.6) ---
  // Scoped handler (DURING/HANDLER): runs body; a trap inside transfers to
  // the returned TrapInfo instead of the global handler. Near-zero overhead
  // on the non-error path (setjmp-style, six instructions in the original).
  std::optional<TrapInfo> Try(const std::function<void()>& body);

  // --- Micro-reboot orchestration (§3.2.6, five steps) ---
  // Requires this compartment to be rebooting *itself* (typically from its
  // error handler) or holding an import on the target's reset entry point.
  void MicroRebootSelf();

  // --- Debug ---
  void DebugLog(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // Compartment native state object (analog of compartment globals).
  template <typename T>
  T& State() {
    return *static_cast<T*>(StateRaw());
  }

  // Internal: nesting depth of scoped handlers (consulted by trap delivery).
  int scope_depth() const { return scope_depth_; }

 private:
  friend class StackBuffer;
  void* StateRaw();
  // Shared trap-dispatch wrapper: runs op; on TrapException applies the
  // scoped/global/unwind policy, retrying once on kInstallContext with
  // info.regs.a[0] as the replacement authority.
  template <typename Fn>
  auto Checked(const Capability& authority, Fn&& op) -> decltype(op(authority));

  Capability CallSched(const char* name, const std::vector<Capability>& args);
  Capability CallAlloc(const char* name, const std::vector<Capability>& args);

  System* system_;
  GuestThread* thread_;
  int compartment_;
  int scope_depth_ = 0;
  bool in_error_handler_ = false;

  friend class Switcher;
};

}  // namespace cheriot

#endif  // SRC_RUNTIME_COMPARTMENT_CTX_H_

#include "src/cap/capability.h"

#include <sstream>

namespace cheriot {

Capability Capability::RootReadWrite(Address base, Address top) {
  Capability c;
  c.tag_ = true;
  c.base_ = base;
  c.top_ = top;
  c.cursor_ = base;
  c.perms_ = PermissionSet::All()
                 .Without(Permission::kExecute)
                 .Without(Permission::kSeal)
                 .Without(Permission::kUnseal);
  return c;
}

Capability Capability::RootExecute(Address base, Address top) {
  Capability c;
  c.tag_ = true;
  c.base_ = base;
  c.top_ = top;
  c.cursor_ = base;
  c.perms_ = PermissionSet({Permission::kGlobal, Permission::kLoad,
                            Permission::kExecute, Permission::kLoadStoreCap,
                            Permission::kLoadGlobal, Permission::kLoadMutable,
                            Permission::kAccessSystemRegisters});
  return c;
}

Capability Capability::RootSealing() {
  Capability c;
  c.tag_ = true;
  c.base_ = 0;
  c.top_ = 16;  // otype space
  c.cursor_ = 0;
  c.perms_ = PermissionSet({Permission::kGlobal, Permission::kSeal,
                            Permission::kUnseal});
  return c;
}

Capability Capability::MakeSealingAuthority(Address first, Address count) {
  Capability c;
  c.tag_ = true;
  c.base_ = first;
  c.top_ = first + count;
  c.cursor_ = first;
  c.perms_ = PermissionSet({Permission::kGlobal, Permission::kSeal,
                            Permission::kUnseal});
  return c;
}

Capability Capability::WithAddress(Address addr) const {
  Capability c = *this;
  c.cursor_ = addr;
  if (IsSealed()) {
    c.tag_ = false;  // Sealed capabilities are immutable.
  }
  return c;
}

Capability Capability::WithBounds(Address new_base, Address len) const {
  Capability c = *this;
  const Address new_top = new_base + len;
  const bool overflow = new_top < new_base;
  if (!tag_ || IsSealed() || overflow || new_base < base_ || new_top > top_) {
    c.tag_ = false;
  }
  c.base_ = new_base;
  c.top_ = new_top;
  c.cursor_ = new_base;
  return c;
}

Capability Capability::WithPermissions(PermissionSet keep) const {
  Capability c = *this;
  if (IsSealed()) {
    c.tag_ = false;
  }
  c.perms_ = perms_.And(keep);
  return c;
}

Capability Capability::SealedWith(const Capability& authority) const {
  Capability c = *this;
  const auto type = static_cast<OType>(authority.cursor());
  if (!tag_ || !authority.tag() || authority.IsSealed() ||
      !authority.permissions().Has(Permission::kSeal) ||
      !authority.InBounds(authority.cursor(), 1) || IsSealed() ||
      !IsDataOType(type)) {
    c.tag_ = false;
    return c;
  }
  c.otype_ = type;
  return c;
}

Capability Capability::UnsealedWith(const Capability& authority) const {
  Capability c = *this;
  const auto type = static_cast<OType>(authority.cursor());
  if (!tag_ || !authority.tag() || authority.IsSealed() ||
      !authority.permissions().Has(Permission::kUnseal) ||
      !authority.InBounds(authority.cursor(), 1) || otype_ != type ||
      !IsSealed()) {
    c.tag_ = false;
    return c;
  }
  c.otype_ = OType::kUnsealed;
  return c;
}

Capability Capability::SealedAs(OType type) const {
  Capability c = *this;
  if (!tag_ || IsSealed()) {
    c.tag_ = false;
  }
  c.otype_ = type;
  return c;
}

Capability Capability::UnsealedExact(OType type) const {
  Capability c = *this;
  if (!tag_ || otype_ != type) {
    c.tag_ = false;
  }
  c.otype_ = OType::kUnsealed;
  return c;
}

Capability Capability::AttenuatedForLoadVia(const Capability& authority) const {
  Capability c = *this;
  if (!c.tag_) {
    return c;
  }
  if (!authority.permissions().Has(Permission::kLoadStoreCap)) {
    c.tag_ = false;
    return c;
  }
  if (!authority.permissions().Has(Permission::kLoadMutable)) {
    // Deep immutability: everything reachable becomes read-only.
    c.perms_ = c.perms_.Without(Permission::kStore)
                   .Without(Permission::kLoadMutable)
                   .Without(Permission::kStoreLocal);
  }
  if (!authority.permissions().Has(Permission::kLoadGlobal)) {
    // Deep no-capture: everything reachable becomes local.
    c.perms_ = c.perms_.Without(Permission::kGlobal)
                   .Without(Permission::kLoadGlobal);
  }
  return c;
}

std::string PermissionSet::ToString() const {
  std::string s;
  auto add = [&](Permission p, char ch) {
    if (Has(p)) {
      s.push_back(ch);
    }
  };
  add(Permission::kGlobal, 'G');
  add(Permission::kLoad, 'r');
  add(Permission::kStore, 'w');
  add(Permission::kExecute, 'x');
  add(Permission::kLoadStoreCap, 'c');
  add(Permission::kLoadGlobal, 'g');
  add(Permission::kLoadMutable, 'm');
  add(Permission::kStoreLocal, 'l');
  add(Permission::kSeal, 'S');
  add(Permission::kUnseal, 'U');
  add(Permission::kAccessSystemRegisters, '$');
  add(Permission::kRevocationExempt, '!');
  return s;
}

std::string Capability::ToString() const {
  std::ostringstream os;
  os << (tag_ ? "cap" : "int") << "{0x" << std::hex << cursor_;
  if (tag_ || base_ != 0 || top_ != 0) {
    os << " [0x" << base_ << ", 0x" << top_ << ") " << perms_.ToString();
    if (IsSealed()) {
      os << " sealed:" << std::dec << static_cast<int>(otype_);
    }
  }
  os << "}";
  return os.str();
}

}  // namespace cheriot

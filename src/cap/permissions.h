// CHERIoT capability permissions (§2.1 of the paper).
//
// Beyond classic CHERI load/store/execute, CHERIoT adds the deep-attenuation
// permissions permit-load-mutable and permit-load-global, and uses
// permit-store-local/global for the shallow no-capture guarantee.
#ifndef SRC_CAP_PERMISSIONS_H_
#define SRC_CAP_PERMISSIONS_H_

#include <cstdint>
#include <initializer_list>
#include <string>

namespace cheriot {

enum class Permission : uint16_t {
  // The capability may be stored through any store-cap-authorized cap; a cap
  // *without* global may be stored only through a cap with permit-store-local
  // (stacks and register-save areas).
  kGlobal = 1u << 0,
  kLoad = 1u << 1,
  kStore = 1u << 2,
  kExecute = 1u << 3,
  // Permit loading/storing of capabilities (MC). Loads through a cap lacking
  // this yield untagged data.
  kLoadStoreCap = 1u << 4,
  // Deep no-capture (LG): caps loaded through a cap lacking this lose kGlobal
  // and kLoadGlobal.
  kLoadGlobal = 1u << 5,
  // Deep immutability (LM): caps loaded through a cap lacking this lose
  // kStore and kLoadMutable.
  kLoadMutable = 1u << 6,
  // Permit storing non-global (local) capabilities through this cap.
  kStoreLocal = 1u << 7,
  kSeal = 1u << 8,
  kUnseal = 1u << 9,
  // Held only by the switcher's PCC: access to the trusted-stack CSR.
  kAccessSystemRegisters = 1u << 10,
  // Model-only (see DESIGN.md §4.2): accesses through this cap skip the
  // revocation check. The loader grants it solely to the allocator's
  // whole-heap capability, mirroring the paper's "its loads do not consult
  // the revocation bits" (§3.1.3), and to switcher-internal caps.
  kRevocationExempt = 1u << 11,
};

class PermissionSet {
 public:
  constexpr PermissionSet() = default;
  constexpr explicit PermissionSet(uint16_t bits) : bits_(bits) {}
  constexpr PermissionSet(std::initializer_list<Permission> perms) {
    for (Permission p : perms) {
      bits_ |= static_cast<uint16_t>(p);
    }
  }

  constexpr bool Has(Permission p) const {
    return (bits_ & static_cast<uint16_t>(p)) != 0;
  }
  constexpr bool HasAll(PermissionSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr PermissionSet With(Permission p) const {
    return PermissionSet(bits_ | static_cast<uint16_t>(p));
  }
  constexpr PermissionSet Without(Permission p) const {
    return PermissionSet(bits_ & static_cast<uint16_t>(~static_cast<uint16_t>(p)));
  }
  // Monotonic intersection: the only way to combine permission sets.
  constexpr PermissionSet And(PermissionSet other) const {
    return PermissionSet(bits_ & other.bits_);
  }
  constexpr uint16_t bits() const { return bits_; }
  constexpr bool operator==(const PermissionSet&) const = default;

  // The omnipotent permission set held by the loader's root capabilities.
  static constexpr PermissionSet All() { return PermissionSet(0x0FFF); }
  // Typical data capability: read/write/cap-traffic with deep rights.
  static constexpr PermissionSet ReadWriteGlobal() {
    return PermissionSet({Permission::kGlobal, Permission::kLoad,
                          Permission::kStore, Permission::kLoadStoreCap,
                          Permission::kLoadGlobal, Permission::kLoadMutable});
  }
  // Stack capability: adds store-local, but is itself non-global.
  static constexpr PermissionSet Stack() {
    return PermissionSet({Permission::kLoad, Permission::kStore,
                          Permission::kLoadStoreCap, Permission::kLoadGlobal,
                          Permission::kLoadMutable, Permission::kStoreLocal});
  }
  static constexpr PermissionSet ReadOnlyGlobal() {
    return PermissionSet({Permission::kGlobal, Permission::kLoad,
                          Permission::kLoadStoreCap, Permission::kLoadGlobal});
  }

  std::string ToString() const;

 private:
  uint16_t bits_ = 0;
};

}  // namespace cheriot

#endif  // SRC_CAP_PERMISSIONS_H_

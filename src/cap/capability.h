// The CHERIoT capability value type (§2.1).
//
// A capability carries a cursor, bounds [base, top), a permission set, a seal
// otype and a tag. All derivation operations are rights-non-increasing;
// invalid derivations clear the tag rather than producing a more powerful
// capability. Untagged capabilities double as plain integers (the cursor is
// the value), matching the merged register file of the real ISA.
#ifndef SRC_CAP_CAPABILITY_H_
#define SRC_CAP_CAPABILITY_H_

#include <cstdint>
#include <string>

#include "src/base/types.h"
#include "src/cap/permissions.h"

namespace cheriot {

// Seal object types. The CHERIoT encoding reserves a handful of otypes for
// sentries (forward/backward control flow with interrupt posture, §2.1) and
// leaves seven usable data otypes — the scarcity that motivates the token
// API's virtualized sealing (§3.2.1).
enum class OType : uint8_t {
  kUnsealed = 0,
  // Forward sentries: unsealed by a jump; optionally switch interrupt status.
  kSentryInheriting = 1,
  kSentryEnabling = 2,
  kSentryDisabling = 3,
  // Backward (return) sentries: restore interrupt status on return.
  kReturnSentryEnabling = 4,
  kReturnSentryDisabling = 5,
  // Data sealing types 9..15 (7 usable). By RTOS convention the loader
  // reserves 9 for the switcher (sealed export-table entries), 10 for the
  // allocator (allocation capabilities), and 11 for the token API, which
  // virtualizes it into arbitrarily many software-defined types.
  kFirstData = 9,
  kSwitcherCompartment = 9,
  kAllocatorQuota = 10,
  kTokenApi = 11,
  kSchedulerState = 12,
  kLastData = 15,
};

inline constexpr bool IsSentryOType(OType t) {
  return t >= OType::kSentryInheriting && t <= OType::kReturnSentryDisabling;
}
inline constexpr bool IsDataOType(OType t) {
  return t >= OType::kFirstData && t <= OType::kLastData;
}

class Capability {
 public:
  // The default capability is the untagged null capability (integer 0).
  constexpr Capability() = default;

  // An untagged capability whose cursor is a plain integer value.
  static constexpr Capability FromWord(Word value) {
    Capability c;
    c.cursor_ = value;
    return c;
  }

  // Rebuilds a capability from its serialised fields (snapshot restore,
  // DESIGN.md §10). This is NOT a derivation — it can mint any capability —
  // so it is reserved for the snapshot layer, which only ever round-trips
  // values that were produced by legitimate derivations.
  static constexpr Capability FromRaw(Address cursor, Address base, Address top,
                                      uint16_t perm_bits, uint8_t otype,
                                      bool tag) {
    Capability c;
    c.cursor_ = cursor;
    c.base_ = base;
    c.top_ = top;
    c.perms_ = PermissionSet(perm_bits);
    c.otype_ = static_cast<OType>(otype);
    c.tag_ = tag;
    return c;
  }

  // --- Root capabilities (held only by the loader at boot, §3.1.1) ---
  static Capability RootReadWrite(Address base, Address top);
  static Capability RootExecute(Address base, Address top);
  static Capability RootSealing();
  // Sealing/unsealing authority over [first, first+count) type ids. Used by
  // the loader and the token service for *virtual* sealing types (ids >= 16,
  // outside the hardware otype space); TCB-only.
  static Capability MakeSealingAuthority(Address first, Address count);

  // --- Observers ---
  constexpr bool tag() const { return tag_; }
  constexpr Address cursor() const { return cursor_; }
  constexpr Word word() const { return cursor_; }
  constexpr Address base() const { return base_; }
  constexpr Address top() const { return top_; }  // exclusive
  constexpr Address length() const { return top_ - base_; }
  constexpr PermissionSet permissions() const { return perms_; }
  constexpr OType otype() const { return otype_; }
  constexpr bool IsSealed() const { return otype_ != OType::kUnsealed; }
  constexpr bool IsSentry() const { return IsSentryOType(otype_); }
  constexpr bool IsNull() const { return !tag_ && cursor_ == 0; }

  // True if [addr, addr+size) lies within bounds.
  constexpr bool InBounds(Address addr, Address size) const {
    return addr >= base_ && size <= top_ - addr && addr <= top_;
  }

  // --- Monotonic derivation. Each returns a new value; failures untag. ---

  // Moves the cursor. CHERI allows out-of-bounds cursors (checked at use).
  Capability WithAddress(Address addr) const;
  Capability AddOffset(int64_t delta) const { return WithAddress(cursor_ + static_cast<Address>(delta)); }

  // Narrows bounds to [new_base, new_base+len). Untags if not a subset of
  // the current bounds or if the capability is sealed. Cursor moves to base.
  Capability WithBounds(Address new_base, Address len) const;
  // Narrows bounds to [cursor, cursor+len).
  Capability WithBoundsAtCursor(Address len) const { return WithBounds(cursor_, len); }

  // Intersects permissions (can only remove rights). Untags if sealed.
  Capability WithPermissions(PermissionSet keep) const;
  Capability WithoutPermission(Permission p) const {
    return WithPermissions(perms_.Without(p));
  }

  // Seals this capability with `authority`'s otype (authority must be a
  // tagged sealing capability with kSeal whose cursor is the otype).
  Capability SealedWith(const Capability& authority) const;
  // Unseals using `authority` (kUnseal, cursor == otype).
  Capability UnsealedWith(const Capability& authority) const;
  // Direct seal used by the hardware model / switcher internals.
  Capability SealedAs(OType type) const;
  Capability UnsealedExact(OType type) const;

  // --- Deep-attenuation on load (applied by the memory model, §2.1) ---
  // Returns the capability as it appears after being loaded through
  // `authority`: MC missing => untag; LM missing => strip store rights;
  // LG missing => strip global rights.
  Capability AttenuatedForLoadVia(const Capability& authority) const;

  // The hardware model may clear tags (load filter, partial overwrite).
  Capability Untagged() const {
    Capability c = *this;
    c.tag_ = false;
    return c;
  }

  std::string ToString() const;
  constexpr bool operator==(const Capability&) const = default;

 private:
  Address cursor_ = 0;
  Address base_ = 0;
  Address top_ = 0;
  PermissionSet perms_{};
  OType otype_ = OType::kUnsealed;
  bool tag_ = false;
};

}  // namespace cheriot

#endif  // SRC_CAP_CAPABILITY_H_

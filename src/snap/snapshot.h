// Snapshot container format (DESIGN.md §10).
//
// A snapshot blob is a fixed header followed by a list of framed sections:
//
//   magic   u64   "CHERSNAP"
//   version u32   kVersion
//   kind    u8    kBoard | kFleet | kScene
//   flags   u32   Flags bitmask
//   count   u32   number of sections
//   count × { id u32 (fourcc), size u64, body[size] }
//
// Section bodies use snap::Writer/Reader primitives and are individually
// byte-stable: serialising the same state twice yields the same bytes, which
// is what lets Restore() verify itself by re-serialising and comparing.
#ifndef SRC_SNAP_SNAPSHOT_H_
#define SRC_SNAP_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/snap/wire.h"

namespace cheriot::snap {

inline constexpr uint64_t kMagic = 0x50414E5352454843ull;  // "CHERSNAP" LE
// v2: GuestThread::block_seq (KERN) + Scheduler block_seq counter (SCHD),
// pinning FIFO futex wake order across snapshot/restore.
// v3: authority-coverage recorder (COVG section + coverage presence bytes in
// the board OPTS and fleet FLET sections).
inline constexpr uint32_t kVersion = 3;

enum Kind : uint8_t {
  kBoard = 1,  // one board: options + full machine/kernel state (+ log)
  kFleet = 2,  // a fleet: options + per-board state + fabric + control log
  kScene = 3,  // crash scene: machine/kernel state only, mid-run, no restore
};

enum Flags : uint32_t {
  // The board can be rebuilt directly from its state sections: it was
  // snapshotted straight after Boot() (no guest instruction has run, no
  // recorder attached), so no fiber holds live host state.
  kColdRestorable = 1u << 0,
  // The blob carries a replay log of every external input since Boot();
  // Restore() re-executes it to rebuild live fiber state deterministically.
  kHasReplayLog = 1u << 1,
  kHasTrace = 1u << 2,
  kHasForensics = 1u << 3,
  // Embedded inside a fleet blob: per-board state is verification-only (the
  // fleet replays its own control log to rebuild boards).
  kEmbedded = 1u << 4,
  kHasCoverage = 1u << 5,
};

// Section ids (fourcc, read as ASCII in hexdumps).
inline constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(a) | (static_cast<uint32_t>(b) << 8) |
         (static_cast<uint32_t>(c) << 16) | (static_cast<uint32_t>(d) << 24);
}
inline constexpr uint32_t kSecOptions = FourCc('O', 'P', 'T', 'S');
inline constexpr uint32_t kSecClock = FourCc('C', 'L', 'C', 'K');
inline constexpr uint32_t kSecMemory = FourCc('S', 'R', 'A', 'M');
inline constexpr uint32_t kSecIrq = FourCc('I', 'R', 'Q', 'S');
inline constexpr uint32_t kSecDevices = FourCc('D', 'E', 'V', 'S');
inline constexpr uint32_t kSecRevoker = FourCc('R', 'V', 'O', 'K');
inline constexpr uint32_t kSecKernel = FourCc('K', 'E', 'R', 'N');
inline constexpr uint32_t kSecSched = FourCc('S', 'C', 'H', 'D');
inline constexpr uint32_t kSecSwitcher = FourCc('S', 'W', 'C', 'H');
inline constexpr uint32_t kSecAlloc = FourCc('A', 'L', 'O', 'C');
inline constexpr uint32_t kSecBoard = FourCc('B', 'O', 'R', 'D');
inline constexpr uint32_t kSecBootInfo = FourCc('B', 'O', 'O', 'T');
inline constexpr uint32_t kSecTrace = FourCc('T', 'R', 'C', 'E');
inline constexpr uint32_t kSecForensics = FourCc('H', 'L', 'T', 'H');
inline constexpr uint32_t kSecReplayLog = FourCc('R', 'L', 'O', 'G');
inline constexpr uint32_t kSecFleet = FourCc('F', 'L', 'E', 'T');
inline constexpr uint32_t kSecFabric = FourCc('F', 'A', 'B', 'R');
inline constexpr uint32_t kSecFleetBoards = FourCc('B', 'R', 'D', 'S');
inline constexpr uint32_t kSecFleetLog = FourCc('F', 'L', 'O', 'G');
inline constexpr uint32_t kSecCoverage = FourCc('C', 'O', 'V', 'G');

std::string SectionName(uint32_t id);

struct Section {
  uint32_t id = 0;
  std::vector<uint8_t> body;
};

struct Container {
  uint8_t kind = 0;
  uint32_t flags = 0;
  std::vector<Section> sections;

  // Returns the section or null. Throws SnapshotError via RequireSection.
  const Section* Find(uint32_t id) const;
  const Section& Require(uint32_t id) const;
  bool Has(uint32_t id) const { return Find(id) != nullptr; }

  std::vector<uint8_t> Assemble() const;
  static Container Parse(const uint8_t* data, size_t size);
  static Container Parse(const std::vector<uint8_t>& blob) {
    return Parse(blob.data(), blob.size());
  }
};

}  // namespace cheriot::snap

#endif  // SRC_SNAP_SNAPSHOT_H_

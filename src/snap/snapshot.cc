#include "src/snap/snapshot.h"

namespace cheriot::snap {

std::string SectionName(uint32_t id) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((id >> (8 * i)) & 0xff);
    s[i] = (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return s;
}

const Section* Container::Find(uint32_t id) const {
  for (const Section& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const Section& Container::Require(uint32_t id) const {
  const Section* s = Find(id);
  if (s == nullptr) {
    throw SnapshotError("snapshot missing section " + SectionName(id));
  }
  return *s;
}

std::vector<uint8_t> Container::Assemble() const {
  Writer w;
  w.U64(kMagic);
  w.U32(kVersion);
  w.U8(kind);
  w.U32(flags);
  w.U32(static_cast<uint32_t>(sections.size()));
  for (const Section& s : sections) {
    w.U32(s.id);
    w.U64(s.body.size());
    w.Bytes(s.body.data(), s.body.size());
  }
  return w.Take();
}

Container Container::Parse(const uint8_t* data, size_t size) {
  Reader r(data, size);
  if (r.U64() != kMagic) throw SnapshotError("bad snapshot magic");
  const uint32_t version = r.U32();
  if (version != kVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version));
  }
  Container c;
  c.kind = r.U8();
  c.flags = r.U32();
  const uint32_t count = r.U32();
  for (uint32_t i = 0; i < count; ++i) {
    Section s;
    s.id = r.U32();
    const uint64_t len = r.U64();
    if (len > r.remaining()) throw SnapshotError("snapshot section truncated");
    s.body.resize(len);
    r.BytesInto(s.body.data(), len);
    c.sections.push_back(std::move(s));
  }
  r.ExpectEnd("container");
  return c;
}

}  // namespace cheriot::snap

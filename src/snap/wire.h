// Byte-stable little-endian wire format for board snapshots (DESIGN.md §10).
//
// Every integer is written at a fixed width in little-endian byte order
// regardless of host endianness, so a snapshot taken on one host is readable
// on any other and two serialisations of the same state are byte-identical.
// The Reader throws SnapshotError on truncation or malformed input rather
// than asserting: snapshot blobs cross a trust boundary (files on disk).
#ifndef SRC_SNAP_WIRE_H_
#define SRC_SNAP_WIRE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/cap/capability.h"

namespace cheriot::snap {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Bytes(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  void Blob(const std::vector<uint8_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size());
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  // Fixed 13-byte capability encoding: cursor, base, top, perms, otype, tag.
  void Cap(const Capability& c) {
    U32(c.cursor());
    U32(c.base());
    U32(c.top());
    U16(c.permissions().bits());
    U8(static_cast<uint8_t>(c.otype()));
    Bool(c.tag());
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<uint8_t>& v) : Reader(v.data(), v.size()) {}

  uint8_t U8() {
    Need(1);
    return *p_++;
  }
  uint16_t U16() {
    Need(2);
    uint16_t v = static_cast<uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return v;
  }
  uint32_t U32() {
    Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  uint64_t U64() {
    Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  void BytesInto(void* out, size_t size) {
    Need(size);
    std::memcpy(out, p_, size);
    p_ += size;
  }
  std::vector<uint8_t> Blob() {
    const uint64_t n = U64();
    Need(n);
    std::vector<uint8_t> v(p_, p_ + n);
    p_ += n;
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    Need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  Capability Cap() {
    const Address cursor = U32();
    const Address base = U32();
    const Address top = U32();
    const uint16_t perms = U16();
    const uint8_t otype = U8();
    const bool tag = Bool();
    return Capability::FromRaw(cursor, base, top, perms, otype, tag);
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }
  void ExpectEnd(const char* what) const {
    if (!AtEnd()) {
      throw SnapshotError(std::string("trailing bytes in section ") + what);
    }
  }

 private:
  void Need(size_t n) const {
    if (static_cast<size_t>(end_ - p_) < n) {
      throw SnapshotError("snapshot truncated");
    }
  }
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace cheriot::snap

#endif  // SRC_SNAP_WIRE_H_

// Structured comparison of two snapshot blobs: which sections differ, and
// for the first divergent section, the byte offset of the first difference
// within that section's body (plus its absolute offset in each blob). Used
// by `cheriot_snap diff` and by tests asserting replay determinism.
#ifndef SRC_SNAP_DIFF_H_
#define SRC_SNAP_DIFF_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::snap {

struct SectionDiff {
  uint32_t id = 0;        // fourcc
  std::string name;       // SectionName(id)
  size_t size_a = 0;
  size_t size_b = 0;
  bool only_in_a = false;
  bool only_in_b = false;
  // First differing byte within the section body (also set when the bodies
  // are equal up to the shorter length — then it is that length).
  size_t first_diff_offset = 0;
  // Absolute offset of that byte in each blob (header + frames + body
  // offset); 0 when the section is absent from that blob.
  size_t abs_offset_a = 0;
  size_t abs_offset_b = 0;
};

struct BlobDiff {
  bool equal = false;
  bool header_differs = false;   // magic/version/kind/flags/section count
  std::string header_detail;     // human-readable header mismatch, if any
  std::vector<SectionDiff> divergent;  // in section order of blob A
  // The first divergent section (the diff a human wants): name + offset.
  // Empty summary when equal.
  std::string summary;
};

// Parses both blobs and compares section-by-section. Throws SnapshotError
// if either blob is not a well-formed container.
BlobDiff DiffBlobs(const std::vector<uint8_t>& a,
                   const std::vector<uint8_t>& b);

}  // namespace cheriot::snap

#endif  // SRC_SNAP_DIFF_H_

#include "src/snap/diff.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/snap/snapshot.h"

namespace cheriot::snap {

namespace {

// Fixed header: magic u64 + version u32 + kind u8 + flags u32 + count u32.
constexpr size_t kHeaderBytes = 8 + 4 + 1 + 4 + 4;
// Per-section frame preceding each body: id u32 + size u64.
constexpr size_t kFrameBytes = 4 + 8;

// Absolute byte offset of each section's body within the assembled blob,
// in section order (recomputed from the parsed sizes — Assemble() is
// deterministic, so this matches the input bytes exactly).
std::map<uint32_t, size_t> BodyOffsets(const Container& c) {
  std::map<uint32_t, size_t> offsets;
  size_t off = kHeaderBytes;
  for (const Section& s : c.sections) {
    offsets.emplace(s.id, off + kFrameBytes);
    off += kFrameBytes + s.body.size();
  }
  return offsets;
}

std::string Format(const char* fmt, size_t x, size_t y) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, x, y);
  return buf;
}

}  // namespace

BlobDiff DiffBlobs(const std::vector<uint8_t>& a,
                   const std::vector<uint8_t>& b) {
  const Container ca = Container::Parse(a);
  const Container cb = Container::Parse(b);
  BlobDiff d;

  if (ca.kind != cb.kind) {
    d.header_differs = true;
    d.header_detail = Format("kind %zu vs %zu", ca.kind, cb.kind);
  } else if (ca.flags != cb.flags) {
    d.header_differs = true;
    d.header_detail = Format("flags 0x%zx vs 0x%zx", ca.flags, cb.flags);
  } else if (ca.sections.size() != cb.sections.size()) {
    d.header_differs = true;
    d.header_detail =
        Format("section count %zu vs %zu", ca.sections.size(),
               cb.sections.size());
  }

  const auto offsets_a = BodyOffsets(ca);
  const auto offsets_b = BodyOffsets(cb);

  // Walk A's sections in order, then anything only in B.
  for (const Section& sa : ca.sections) {
    const Section* sb = cb.Find(sa.id);
    SectionDiff sd;
    sd.id = sa.id;
    sd.name = SectionName(sa.id);
    sd.size_a = sa.body.size();
    sd.abs_offset_a = offsets_a.at(sa.id);
    if (sb == nullptr) {
      sd.only_in_a = true;
      d.divergent.push_back(std::move(sd));
      continue;
    }
    sd.size_b = sb->body.size();
    const size_t common = std::min(sa.body.size(), sb->body.size());
    const auto mismatch =
        std::mismatch(sa.body.begin(), sa.body.begin() + common,
                      sb->body.begin());
    const size_t first =
        static_cast<size_t>(mismatch.first - sa.body.begin());
    if (first == common && sa.body.size() == sb->body.size()) {
      continue;  // identical
    }
    sd.first_diff_offset = first;
    sd.abs_offset_a = offsets_a.at(sa.id) + first;
    sd.abs_offset_b = offsets_b.at(sa.id) + first;
    d.divergent.push_back(std::move(sd));
  }
  for (const Section& sb : cb.sections) {
    if (ca.Find(sb.id) != nullptr) {
      continue;
    }
    SectionDiff sd;
    sd.id = sb.id;
    sd.name = SectionName(sb.id);
    sd.size_b = sb.body.size();
    sd.abs_offset_b = offsets_b.at(sb.id);
    sd.only_in_b = true;
    d.divergent.push_back(std::move(sd));
  }

  d.equal = !d.header_differs && d.divergent.empty();
  if (d.equal) {
    return d;
  }
  if (!d.divergent.empty()) {
    const SectionDiff& f = d.divergent.front();
    if (f.only_in_a || f.only_in_b) {
      d.summary = "section " + f.name + " present only in " +
                  (f.only_in_a ? "first" : "second") + " blob";
    } else {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "section %s first differs at byte %zu of its body "
                    "(abs %zu vs %zu; sizes %zu vs %zu)",
                    f.name.c_str(), f.first_diff_offset, f.abs_offset_a,
                    f.abs_offset_b, f.size_a, f.size_b);
      d.summary = buf;
    }
  } else {
    d.summary = "header differs: " + d.header_detail;
  }
  return d;
}

}  // namespace cheriot::snap
